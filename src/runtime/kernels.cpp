// Standard shelf kernels: the leaf behaviours the benchmark and example
// applications reference from their models. They call the same ISSPL
// primitives the hand-coded benchmark versions call.
#include <complex>
#include <map>
#include <memory>
#include <mutex>

#include "isspl/fft.hpp"
#include "isspl/transpose.hpp"
#include "isspl/vector_ops.hpp"
#include "runtime/registry.hpp"
#include "support/error.hpp"

namespace sage::runtime {

namespace {

using Complex = std::complex<float>;

/// Process-wide FFT plan cache (plans are immutable after construction
/// and safe to execute concurrently).
const isspl::FftPlan& cached_plan(std::size_t n, isspl::FftDirection dir) {
  static std::mutex mu;
  static std::map<std::pair<std::size_t, int>,
                  std::unique_ptr<isspl::FftPlan>>
      cache;
  std::lock_guard<std::mutex> lock(mu);
  auto key = std::make_pair(n, static_cast<int>(dir));
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, std::make_unique<isspl::FftPlan>(n, dir)).first;
  }
  return *it->second;
}

void expect_2d(const PortSlice& slice, const char* who) {
  SAGE_CHECK_AS(RuntimeError, slice.local_dims.size() == 2,
                who, ": port '", slice.name, "' must be 2-D, has ",
                slice.local_dims.size(), " dims");
}

/// Line-oriented kernels treat an n-D block as (product of outer dims)
/// lines of (last dim) elements.
struct Lines {
  std::size_t count;
  std::size_t length;
};

Lines lines_of(const PortSlice& slice, const char* who) {
  SAGE_CHECK_AS(RuntimeError, !slice.local_dims.empty(), who, ": port '",
                slice.name, "' has no dims");
  Lines lines{1, slice.local_dims.back()};
  for (std::size_t i = 0; i + 1 < slice.local_dims.size(); ++i) {
    lines.count *= slice.local_dims[i];
  }
  return lines;
}

void kernel_matrix_source(KernelContext& ctx) {
  PortSlice& out = ctx.out("out");
  auto data = out.as<Complex>();
  // Walk the striping runs directly: global_of_local() rescans the run
  // list per element, which dominates the fill on large blocks.
  const int iter = ctx.iteration();
  std::size_t local = 0;
  for (const Run& run : out.runs) {
    for (std::size_t k = 0; k < run.length; ++k) {
      data[local++] = test_pattern(run.global_offset + k, iter);
    }
  }
  SAGE_CHECK_AS(RuntimeError, local == data.size(),
                "matrix_source: runs cover ", local, " of ", data.size(),
                " elements");
}

void kernel_matrix_sink(KernelContext& ctx) {
  const PortSlice& in = ctx.in("in");
  ctx.set_result(block_checksum(in.as<Complex>()));
}

void kernel_identity(KernelContext& ctx) {
  const PortSlice& in = ctx.in("in");
  PortSlice& out = ctx.out("out");
  SAGE_CHECK_AS(RuntimeError, in.data.size() == out.data.size(),
                "identity: size mismatch");
  std::copy(in.data.begin(), in.data.end(), out.data.begin());
}

void kernel_fft_rows(KernelContext& ctx) {
  const PortSlice& in = ctx.in("in");
  PortSlice& out = ctx.out("out");
  const Lines lines = lines_of(in, "fft_rows");
  auto src = in.as<Complex>();
  auto dst = out.as<Complex>();
  SAGE_CHECK_AS(RuntimeError, src.size() == dst.size(),
                "fft_rows: size mismatch");
  cached_plan(lines.length, isspl::FftDirection::kForward)
      .execute_rows(src, dst, lines.count);
}

void kernel_ifft_rows(KernelContext& ctx) {
  const PortSlice& in = ctx.in("in");
  PortSlice& out = ctx.out("out");
  const Lines lines = lines_of(in, "ifft_rows");
  auto src = in.as<Complex>();
  auto dst = out.as<Complex>();
  SAGE_CHECK_AS(RuntimeError, src.size() == dst.size(),
                "ifft_rows: size mismatch");
  cached_plan(lines.length, isspl::FftDirection::kInverse)
      .execute_rows(src, dst, lines.count);
}

/// Local half of a corner turn: the in-port is striped along dim 1, so
/// the thread-local block is rows x chunk (this thread's columns); the
/// transpose makes it chunk x rows -- this thread's rows of the globally
/// transposed matrix (out-port striped along dim 0 of transposed dims).
void kernel_corner_turn_local(KernelContext& ctx) {
  const PortSlice& in = ctx.in("in");
  PortSlice& out = ctx.out("out");
  expect_2d(in, "corner_turn_local");
  const std::size_t rows = in.local_dims[0];
  const std::size_t chunk = in.local_dims[1];
  SAGE_CHECK_AS(RuntimeError,
                out.local_dims.size() == 2 && out.local_dims[0] == chunk &&
                    out.local_dims[1] == rows,
                "corner_turn_local: out block must be transposed in block");
  isspl::transpose(in.as<Complex>(), out.as<Complex>(), rows, chunk);
}

void kernel_magnitude(KernelContext& ctx) {
  const PortSlice& in = ctx.in("in");
  PortSlice& out = ctx.out("out");
  isspl::vmag(in.as<Complex>(), out.as<float>());
}

void kernel_window_rows(KernelContext& ctx) {
  const PortSlice& in = ctx.in("in");
  PortSlice& out = ctx.out("out");
  const Lines lines = lines_of(in, "window_rows");
  auto src = in.as<Complex>();
  auto dst = out.as<Complex>();
  std::copy(src.begin(), src.end(), dst.begin());
  // Window selection by parameter: 0 rect, 1 hann, 2 hamming, 3 blackman.
  const auto which = static_cast<int>(ctx.param_or("window", 1));
  const auto window =
      isspl::make_window(static_cast<isspl::Window>(which), lines.length);
  for (std::size_t r = 0; r < lines.count; ++r) {
    isspl::apply_window(dst.subspan(r * lines.length, lines.length), window);
  }
}

void kernel_threshold(KernelContext& ctx) {
  const PortSlice& in = ctx.in("in");
  PortSlice& out = ctx.out("out");
  const auto cutoff = static_cast<float>(ctx.param_or("cutoff", 0.5));
  auto src = in.as<float>();
  auto dst = out.as<float>();
  SAGE_CHECK_AS(RuntimeError, src.size() == dst.size(),
                "threshold: size mismatch");
  for (std::size_t i = 0; i < src.size(); ++i) {
    dst[i] = src[i] >= cutoff ? src[i] : 0.0f;
  }
}

void kernel_fir_rows(KernelContext& ctx) {
  const PortSlice& in = ctx.in("in");
  PortSlice& out = ctx.out("out");
  const Lines lines = lines_of(in, "fir_rows");
  const auto ntaps = static_cast<std::size_t>(ctx.param_or("taps", 8));
  // Simple boxcar taps; a real design would pull them from the model.
  std::vector<float> taps(ntaps, 1.0f / static_cast<float>(ntaps));
  auto src = in.as<float>();
  auto dst = out.as<float>();
  for (std::size_t r = 0; r < lines.count; ++r) {
    isspl::fir(src.subspan(r * lines.length, lines.length), taps,
               dst.subspan(r * lines.length, lines.length));
  }
}

/// Cell-averaging CFAR detector along lines: a cell is declared a
/// detection when it exceeds `scale` times the mean of the training
/// cells around it (`train` cells each side, separated by `guard`
/// cells). Detections keep their value, everything else becomes zero.
void kernel_cfar_rows(KernelContext& ctx) {
  const PortSlice& in = ctx.in("in");
  PortSlice& out = ctx.out("out");
  const Lines lines = lines_of(in, "cfar_rows");
  const auto train = static_cast<std::ptrdiff_t>(ctx.param_or("train", 8));
  const auto guard = static_cast<std::ptrdiff_t>(ctx.param_or("guard", 2));
  const auto scale = static_cast<float>(ctx.param_or("scale", 4.0));
  SAGE_CHECK_AS(RuntimeError, train >= 1 && guard >= 0,
                "cfar_rows: need train >= 1, guard >= 0");
  auto src = in.as<float>();
  auto dst = out.as<float>();
  SAGE_CHECK_AS(RuntimeError, src.size() == dst.size(),
                "cfar_rows: size mismatch");

  const auto n = static_cast<std::ptrdiff_t>(lines.length);
  for (std::size_t r = 0; r < lines.count; ++r) {
    const float* line = src.data() + r * lines.length;
    float* detections = dst.data() + r * lines.length;
    for (std::ptrdiff_t c = 0; c < n; ++c) {
      double noise = 0.0;
      int cells = 0;
      for (std::ptrdiff_t offset = guard + 1; offset <= guard + train;
           ++offset) {
        if (c - offset >= 0) {
          noise += line[c - offset];
          ++cells;
        }
        if (c + offset < n) {
          noise += line[c + offset];
          ++cells;
        }
      }
      const float threshold =
          cells > 0 ? scale * static_cast<float>(noise / cells) : 0.0f;
      detections[c] = line[c] > threshold ? line[c] : 0.0f;
    }
  }
}

/// Batched transpose: swaps the last two dims of an n-D block (one
/// dense transpose per outer index). The STAP chain uses it to make the
/// pulse axis contiguous for Doppler FFTs.
void kernel_transpose_batch(KernelContext& ctx) {
  const PortSlice& in = ctx.in("in");
  PortSlice& out = ctx.out("out");
  SAGE_CHECK_AS(RuntimeError, in.local_dims.size() >= 2,
                "transpose_batch: need >= 2 dims");
  const std::size_t rows = in.local_dims[in.local_dims.size() - 2];
  const std::size_t cols = in.local_dims.back();
  std::size_t outer = 1;
  for (std::size_t i = 0; i + 2 < in.local_dims.size(); ++i) {
    outer *= in.local_dims[i];
  }
  SAGE_CHECK_AS(RuntimeError,
                out.local_dims.size() == in.local_dims.size() &&
                    out.local_dims[out.local_dims.size() - 2] == cols &&
                    out.local_dims.back() == rows,
                "transpose_batch: out dims must swap the last two in dims");
  auto src = in.as<Complex>();
  auto dst = out.as<Complex>();
  const std::size_t plane = rows * cols;
  for (std::size_t o = 0; o < outer; ++o) {
    isspl::transpose(src.subspan(o * plane, plane),
                     dst.subspan(o * plane, plane), rows, cols);
  }
}

/// Collapses the first (outer) dimension by accumulating power:
/// out[i] = sum over d0 of |in[d0, i]|^2. Beamforming-style channel
/// combination for the STAP chain.
void kernel_power_sum_outer(KernelContext& ctx) {
  const PortSlice& in = ctx.in("in");
  PortSlice& out = ctx.out("out");
  SAGE_CHECK_AS(RuntimeError, in.local_dims.size() >= 2,
                "power_sum_outer: need >= 2 dims");
  const std::size_t channels = in.local_dims[0];
  std::size_t inner = 1;
  for (std::size_t i = 1; i < in.local_dims.size(); ++i) {
    inner *= in.local_dims[i];
  }
  auto src = in.as<Complex>();
  auto dst = out.as<float>();
  SAGE_CHECK_AS(RuntimeError, dst.size() == inner,
                "power_sum_outer: out must drop the first dim");
  std::fill(dst.begin(), dst.end(), 0.0f);
  for (std::size_t ch = 0; ch < channels; ++ch) {
    for (std::size_t i = 0; i < inner; ++i) {
      dst[i] += std::norm(src[ch * inner + i]);
    }
  }
}

void kernel_float_source(KernelContext& ctx) {
  PortSlice& out = ctx.out("out");
  auto data = out.as<float>();
  const int iter = ctx.iteration();
  std::size_t local = 0;
  for (const Run& run : out.runs) {
    for (std::size_t k = 0; k < run.length; ++k) {
      data[local++] = test_pattern(run.global_offset + k, iter).real();
    }
  }
  SAGE_CHECK_AS(RuntimeError, local == data.size(),
                "float_source: runs cover ", local, " of ", data.size(),
                " elements");
}

void kernel_float_sink(KernelContext& ctx) {
  const PortSlice& in = ctx.in("in");
  double acc = 0.0;
  for (float v : in.as<float>()) acc += v;
  ctx.set_result(acc);
}

void kernel_scale(KernelContext& ctx) {
  const PortSlice& in = ctx.in("in");
  PortSlice& out = ctx.out("out");
  const auto factor = static_cast<float>(ctx.param_or("factor", 1.0));
  auto src = in.as<Complex>();
  auto dst = out.as<Complex>();
  SAGE_CHECK_AS(RuntimeError, src.size() == dst.size(),
                "scale: size mismatch");
  for (std::size_t i = 0; i < src.size(); ++i) dst[i] = src[i] * factor;
}

}  // namespace

FunctionRegistry standard_registry() {
  FunctionRegistry registry;
  registry.add("matrix_source", kernel_matrix_source);
  registry.add("matrix_sink", kernel_matrix_sink);
  registry.add("float_source", kernel_float_source);
  registry.add("float_sink", kernel_float_sink);
  registry.add("identity", kernel_identity);
  registry.add("isspl.fft_rows", kernel_fft_rows);
  registry.add("isspl.ifft_rows", kernel_ifft_rows);
  registry.add("isspl.corner_turn_local", kernel_corner_turn_local);
  registry.add("isspl.magnitude", kernel_magnitude);
  registry.add("isspl.window_rows", kernel_window_rows);
  registry.add("isspl.threshold", kernel_threshold);
  registry.add("isspl.fir_rows", kernel_fir_rows);
  registry.add("isspl.scale", kernel_scale);
  registry.add("isspl.transpose_batch", kernel_transpose_batch);
  registry.add("isspl.power_sum_outer", kernel_power_sum_outer);
  registry.add("isspl.cfar_rows", kernel_cfar_rows);
  return registry;
}

}  // namespace sage::runtime
