// openSAGE -- the function registry: binding glue-code kernel names to
// native leaf behaviours.
//
// "The entire software development environment integrates COTS-supplied
// components (compilers and run-time system, and libraries), along with
// custom, user-supplied software": functions in the model reference
// kernels by name; the runtime resolves those names against this
// registry when the function table loads, exactly as the generated glue
// code linked against the ISSPL function libraries.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/striping.hpp"

namespace sage::runtime {

/// A thread-local view of one port's data for a single invocation.
struct PortSlice {
  std::string name;
  std::span<std::byte> data;            // thread-local storage
  std::size_t elem_bytes = 0;
  std::vector<std::size_t> local_dims;  // dims of this thread's slice
  std::vector<std::size_t> global_dims;
  std::vector<Run> runs;                // global runs backing the slice

  std::size_t local_elems() const { return data.size() / elem_bytes; }

  /// Global element index corresponding to a local element index.
  std::size_t global_of_local(std::size_t local_index) const;

  template <typename T>
  std::span<T> as() {
    return {reinterpret_cast<T*>(data.data()), data.size() / sizeof(T)};
  }
  template <typename T>
  std::span<const T> as() const {
    return {reinterpret_cast<const T*>(data.data()), data.size() / sizeof(T)};
  }
};

/// Everything a kernel invocation sees.
class KernelContext {
 public:
  KernelContext(int thread, int num_threads, int iteration)
      : thread_(thread), num_threads_(num_threads), iteration_(iteration) {}

  int thread() const { return thread_; }
  int num_threads() const { return num_threads_; }
  int iteration() const { return iteration_; }

  const PortSlice& in(std::string_view port) const;
  PortSlice& out(std::string_view port);
  bool has_in(std::string_view port) const;
  bool has_out(std::string_view port) const;

  /// Function parameter (from the model, via the glue config).
  double param_or(std::string_view key, double fallback) const;

  /// Records a scalar result (sinks publish checksums this way); the
  /// engine aggregates per function across threads and iterations.
  void set_result(double value) { result_ = value; has_result_ = true; }
  bool has_result() const { return has_result_; }
  double result() const { return result_; }

  // Populated by the engine before the call:
  std::vector<PortSlice> inputs;
  std::vector<PortSlice> outputs;
  std::map<std::string, double, std::less<>> params;

 private:
  int thread_;
  int num_threads_;
  int iteration_;
  double result_ = 0.0;
  bool has_result_ = false;
};

using Kernel = std::function<void(KernelContext&)>;

class FunctionRegistry {
 public:
  FunctionRegistry() = default;

  void add(std::string name, Kernel kernel);
  bool contains(std::string_view name) const;
  const Kernel& lookup(std::string_view name) const;
  std::vector<std::string> names() const;

 private:
  std::map<std::string, Kernel, std::less<>> kernels_;
};

/// Registry preloaded with the standard shelf kernels:
///   matrix_source, matrix_sink, identity,
///   isspl.fft_rows, isspl.ifft_rows, isspl.corner_turn_local,
///   isspl.magnitude, isspl.window_rows, isspl.threshold, isspl.fir_rows,
///   isspl.scale
FunctionRegistry standard_registry();

/// The deterministic test signal shared by SAGE-modeled and hand-coded
/// benchmark versions (so outputs are directly comparable). Inline so the
/// source kernels' fill loops vectorize; the integer mix is cheap and
/// aperiodic-looking.
inline std::complex<float> test_pattern(std::size_t global_index,
                                        int iteration) {
  const auto x = static_cast<std::uint64_t>(global_index) * 2654435761ull +
                 static_cast<std::uint64_t>(iteration) * 97531ull;
  const float re = static_cast<float>((x >> 16) & 0x3FF) / 512.0f - 1.0f;
  const float im = static_cast<float>((x >> 26) & 0x3FF) / 512.0f - 1.0f;
  return {re, im};
}

/// Order-insensitive checksum of a complex block (sum of re + im).
double block_checksum(std::span<const std::complex<float>> data);

}  // namespace sage::runtime
