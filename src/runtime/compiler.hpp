// openSAGE -- the glue-code compiler: GlueConfig + registry -> immutable
// CompiledProgram.
//
// This is the one-time planning phase the warm Session used to perform
// privately on every construction: validate the configuration, check
// every kernel name resolves, build the per-buffer transfer plans,
// intern staging slot ids, lower everything into the flat transfer
// program, and precompute the kernel port bindings. Pulling it out of
// the executor gives the lowered artifact a life of its own -- N
// concurrent sessions share one program, and the content-addressed
// PlanCache persists programs across processes so a warm restart skips
// the planner entirely.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "runtime/program.hpp"
#include "runtime/registry.hpp"

namespace sage::runtime {

/// Stable fingerprint of a registry's kernel *names* (the binding
/// surface a compiled program depends on; kernel bodies are native code
/// and rebind on every Session construction anyway).
std::uint64_t registry_fingerprint(const FunctionRegistry& registry);

class Compiler {
 public:
  /// Full compile: validates the config, checks every kernel resolves
  /// against `registry`, lowers, and stamps the content-addressed
  /// fingerprint. Throws sage::ConfigError / sage::RuntimeError.
  static std::shared_ptr<const CompiledProgram> compile(
      GlueConfig config, const FunctionRegistry& registry);

  /// Lowering only: no registry check, fingerprint left zero. Used for
  /// private recompiles whose placement diverged from the cacheable
  /// artifact (degraded-mode recovery).
  static std::shared_ptr<const CompiledProgram> lower(GlueConfig config);

  /// The plan-cache key: FNV-1a over the canonical glue text, the
  /// registry fingerprint, and kPlanFormatVersion.
  static std::uint64_t fingerprint(const GlueConfig& config,
                                   const FunctionRegistry& registry);
};

/// Content-addressed on-disk program cache: one `<key>.plan` blob per
/// fingerprint under `dir` (created on first store). Loads are
/// fail-soft -- a missing, truncated, corrupt, or stale-format entry is
/// a miss, never an error -- because the cache is an accelerator, not a
/// source of truth.
class PlanCache {
 public:
  explicit PlanCache(std::string dir);

  const std::string& dir() const { return dir_; }
  std::string path_of(std::uint64_t key) const;

  /// The cached program for `key`, or nullptr on any kind of miss.
  std::shared_ptr<const CompiledProgram> load(std::uint64_t key) const;

  /// Persists `program` under `key` (write-to-temp + rename, so a
  /// concurrent reader never sees a half-written blob). Returns false
  /// if the directory or file cannot be written.
  bool store(std::uint64_t key, const CompiledProgram& program) const;

 private:
  std::string dir_;
};

/// The cache-aware front end Session::create and Project::open_session
/// ride: fingerprint the inputs, consult the cache when `plan_cache_dir`
/// is non-empty, compile (and store) on a miss. The returned program's
/// `cache_outcome` / `compile_seconds` record what happened.
std::shared_ptr<const CompiledProgram> compile_or_load(
    GlueConfig config, const FunctionRegistry& registry,
    const std::string& plan_cache_dir);

}  // namespace sage::runtime
