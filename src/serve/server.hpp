// openSAGE -- `sage serve`: the multi-tenant session service.
//
// The paper's run-time infrastructure exists to *serve* compiled
// programs; everything below the service line already scales -- the
// Compiler -> Program -> Executor split lets N sessions share one
// immutable CompiledProgram, and Session::submit()/wait() overlaps data
// sets on one machine epoch. The Server is the missing front end that
// *drives* N sessions at once (cf. bscheduler's daemon multiplexing
// kernel pipelines over executors):
//
//   fleets     -- one warm-session fleet per registered program,
//                 keyed by the program's content-addressed fingerprint
//                 (the plan-cache key) and lazily grown up to a
//                 per-program cap as concurrent demand arrives;
//   admission  -- a bounded queue with shed-beyond-it: a request that
//                 would wait behind more than `max_queue_depth` others
//                 is rejected immediately with a typed verdict, never
//                 blocked (the overload contract);
//   coalescing -- consecutive requests for one program ride a shared
//                 streaming epoch: the scheduler submits a whole batch
//                 onto one session before collecting, so data set i+1
//                 enters the pipeline while i is in flight;
//   tenancy    -- per-tenant quotas (max concurrent requests, max total
//                 requests) and per-tenant metrics, exported through the
//                 same MetricsRegistry / viz::report machinery as the
//                 session probes.
//
// Scheduling model: admission decisions, fleet growth, and
// session assignment all happen at submit() time, under one lock, in
// *virtual time* -- each fleet session keeps a deterministic
// busy-until clock advanced by the program's calibrated solo latency
// (idle start) or streamed period (coalesced start). The worker
// threads then merely realize that plan on the emulated machines. This
// keeps the whole load test deterministic: given one arrival schedule,
// the admit/shed pattern, session assignment, and every reported
// latency are pure functions of the schedule and the calibration --
// host thread interleaving never enters the accounting. Real execution
// results (sink checksums) stay bit-identical to solo Session::run by
// the streaming executor's determinism contract.
//
// Thread safety: every public member is callable from any thread
// concurrently; the Server serializes internally. (Individual Sessions
// stay single-host-threaded underneath -- each fleet slot is driven by
// at most one scheduler worker at a time.)
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <condition_variable>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "runtime/program.hpp"
#include "runtime/registry.hpp"
#include "runtime/session.hpp"
#include "support/clock.hpp"
#include "viz/metrics.hpp"

namespace sage::serve {

/// Per-tenant admission limits. Zero means unlimited.
struct TenantQuota {
  /// Max requests of this tenant in flight at once, measured in virtual
  /// time (admitted requests whose finish time lies beyond the new
  /// arrival). Exceeding it sheds with Admission::kTenantQuota.
  int max_in_flight = 0;
  /// Lifetime cap on admitted requests for this tenant.
  std::uint64_t max_requests = 0;
};

struct ServerOptions {
  /// Scheduler worker threads realizing the execution plan (>= 1).
  int workers = 2;
  /// Fleet cap: warm sessions per registered program. Fleets start at
  /// one session (created and calibrated at add_program) and grow
  /// lazily, one session at a time, when a request arrives while every
  /// existing session is busy in virtual time.
  int max_sessions_per_program = 2;
  /// Admission bound: a request that would find this many admitted
  /// requests still waiting (virtually queued, not yet started) is shed
  /// with Admission::kQueueFull instead of queued.
  int max_queue_depth = 64;
  /// Data sets streamed once per program at registration to calibrate
  /// the steady-state period used by the virtual-time accounting.
  int calibration_sets = 4;
  /// Replay hooks: when both are positive the measuring calibration is
  /// skipped and every fleet's virtual-time model is pinned to these
  /// values (solo latency / streamed period, virtual seconds). Measured
  /// calibration rides thread-CPU time and so jitters run to run; a
  /// pinned model makes two servers driven by one arrival schedule
  /// agree bit-for-bit on every admission verdict and latency.
  support::VirtualSeconds calibration_latency = 0.0;
  support::VirtualSeconds calibration_period = 0.0;
  /// Base execution options for every fleet session (fabric model, cpu
  /// scales, iterations, plan-cache dir...). Callers going through
  /// core::Project should pass Project::resolved_options() so the
  /// hardware model's fabric/CPU derivation applies.
  runtime::ExecuteOptions execute;
};

/// The admission verdict carried by every ticket: rejects surface as
/// typed values, never as blocked callers.
enum class Admission : std::uint8_t {
  kAdmitted,
  kQueueFull,      // bounded queue exceeded: shed (overload)
  kTenantQuota,    // per-tenant quota exceeded: shed
  kUnknownProgram, // program fingerprint never registered
  kShutdown,       // server no longer accepting work
};

const char* to_string(Admission admission);

/// One client request: who is asking (tenant), when it arrives on the
/// open-loop virtual clock, and the per-run overrides to execute with.
struct RunRequest {
  std::string tenant = "default";
  /// Open-loop arrival timestamp in virtual seconds. Negative (the
  /// default) means "now": the latest arrival time seen so far, which
  /// makes closed-loop callers that never set it behave as one burst.
  support::VirtualSeconds arrival_vt = -1.0;
  runtime::RunOverrides overrides;
};

/// Handle to one submission. `admitted()` is the admission-control
/// verdict; only admitted tickets are redeemable via Server::wait.
struct ServeTicket {
  std::uint64_t id = 0;
  Admission admission = Admission::kAdmitted;

  bool admitted() const { return admission == Admission::kAdmitted; }
};

/// One completed request: the real run's stats plus the virtual-time
/// queueing facts the load harness reports.
struct Response {
  std::uint64_t id = 0;
  std::string tenant;
  /// Empty on success; the session error message otherwise.
  std::string error;
  runtime::RunStats stats;
  support::VirtualSeconds arrival_vt = 0.0;
  support::VirtualSeconds start_vt = 0.0;
  support::VirtualSeconds finish_vt = 0.0;
  /// True when the request started back-to-back behind another request
  /// on the same session (rode the shared streaming epoch).
  bool coalesced = false;
  /// Fleet slot index that served the request.
  int session_index = -1;

  bool ok() const { return error.empty(); }
  /// Modeled end-to-end latency: queueing + service, virtual seconds.
  support::VirtualSeconds latency_vt() const { return finish_vt - arrival_vt; }
  /// Modeled queueing delay alone.
  support::VirtualSeconds queue_vt() const { return start_vt - arrival_vt; }
};

struct TenantStats {
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;
  std::uint64_t completed = 0;
  std::uint64_t errors = 0;

  bool operator==(const TenantStats&) const = default;
};

/// Registration-time facts about one program's fleet, including the
/// calibration the virtual-time accounting runs on.
struct ProgramInfo {
  std::uint64_t key = 0;  // content-addressed fingerprint (plan-cache key)
  std::string name;
  /// Calibrated solo run time (virtual makespan of one request).
  support::VirtualSeconds solo_latency_vt = 0.0;
  /// Calibrated steady-state streamed period (virtual time between
  /// consecutive completions on one session's epoch).
  support::VirtualSeconds stream_period_vt = 0.0;
  int sessions = 0;     // fleet size right now
  int session_cap = 0;  // lazy-growth bound

  /// Offered load at which the fleet saturates: one completion per
  /// period per session once every pipeline is primed.
  double saturation_rate() const {
    return stream_period_vt > 0.0
               ? static_cast<double>(session_cap) / stream_period_vt
               : 0.0;
  }
};

struct ServerStats {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed_queue = 0;
  std::uint64_t shed_quota = 0;
  std::uint64_t shed_shutdown = 0;
  std::uint64_t shed_unknown = 0;
  std::uint64_t completed = 0;
  std::uint64_t errors = 0;
  std::uint64_t coalesced = 0;
  int peak_queue_depth = 0;
  int sessions = 0;  // across all fleets
  std::map<std::string, TenantStats> tenants;

  std::uint64_t shed_total() const {
    return shed_queue + shed_quota + shed_shutdown + shed_unknown;
  }
};

/// The multi-tenant session service. See the file comment for the
/// scheduling model; lifecycle is construct -> add_program ->
/// submit/wait from any threads -> shutdown (or destruction).
class Server {
 public:
  explicit Server(ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Registers a compiled program under its content-addressed
  /// fingerprint and calibrates its fleet (one solo run + a short
  /// calibration stream on the first session). Returns the fingerprint
  /// key submissions name. Re-registering the same fingerprint is
  /// idempotent and returns the existing fleet's key. `session_cap`
  /// overrides options.max_sessions_per_program for this fleet.
  std::uint64_t add_program(std::string name,
                            std::shared_ptr<const runtime::CompiledProgram>
                                program,
                            const runtime::FunctionRegistry& registry,
                            std::optional<int> session_cap = {});

  /// Convenience: compile (or load through the plan cache when
  /// options.execute.plan_cache_dir is set) and register.
  std::uint64_t add_program(std::string name, runtime::GlueConfig config,
                            const runtime::FunctionRegistry& registry,
                            std::optional<int> session_cap = {});

  /// Installs (or replaces) a tenant's quota.
  void set_quota(const std::string& tenant, TenantQuota quota);

  /// Admission-controlled submission; never blocks behind execution.
  /// The returned ticket carries the typed verdict: on any shed the
  /// request was NOT enqueued and the ticket is not redeemable.
  ServeTicket submit(std::uint64_t program, RunRequest request = {});

  /// True when an admitted ticket has completed (wait will not block).
  /// Throws sage::RuntimeError for rejected, unknown, or
  /// already-collected tickets.
  bool poll(const ServeTicket& ticket) const;

  /// Blocks until the admitted ticket completes and returns its
  /// response (exactly-once redemption). Session-level failures come
  /// back in Response::error, not as exceptions; rejected, unknown, and
  /// already-collected tickets throw sage::RuntimeError.
  Response wait(const ServeTicket& ticket);

  /// Waits for every outstanding admitted request, in submission order.
  std::vector<Response> drain();

  /// Synchronous convenience: submit + wait. Throws sage::RuntimeError
  /// when the request is shed (the typed verdict is in the message).
  Response run(std::uint64_t program, RunRequest request = {});

  /// Admitted-but-uncollected requests.
  int in_flight() const;

  ProgramInfo program_info(std::uint64_t program) const;
  std::vector<ProgramInfo> programs() const;
  ServerStats stats() const;

  /// Snapshot of the serve metric families (sage_serve_queue_depth,
  /// sage_serve_admitted_total{tenant=}, sage_serve_shed_total{tenant=,
  /// reason=}, sage_serve_latency_seconds, ...). Feed viz::report /
  /// viz::prometheus_text like any session snapshot.
  viz::MetricsSnapshot metrics() const;

  const ServerOptions& options() const { return options_; }

  /// Graceful shutdown: stops admitting (further submits shed with
  /// Admission::kShutdown), lets the workers finish every admitted
  /// request, and joins them. Uncollected responses stay redeemable
  /// through wait()/drain(). Idempotent; the destructor calls it.
  void shutdown();

 private:
  struct Pending;
  struct Slot;
  struct Fleet;

  Slot* claim_locked_();
  void grow_fleet_locked_(Fleet& fleet);
  void worker_();
  void complete_locked_(Pending& pending);
  int waiting_at_locked_(support::VirtualSeconds arrival) const;
  int tenant_in_flight_at_locked_(const std::string& tenant,
                                  support::VirtualSeconds arrival) const;
  ServeTicket shed_locked_(const std::string& tenant, Admission reason);
  int admitted_series_locked_(const std::string& tenant);
  int shed_series_locked_(const std::string& tenant, Admission reason);
  void calibrate_(Fleet& fleet);

  ServerOptions options_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // workers: new request / shutdown
  std::condition_variable done_cv_;  // clients: request completed

  std::vector<std::unique_ptr<Fleet>> fleets_;
  std::map<std::uint64_t, std::size_t> fleet_by_key_;
  std::map<std::string, TenantQuota> quotas_;

  /// Admitted requests by id (monotone -> submission-ordered map).
  std::map<std::uint64_t, std::shared_ptr<Pending>> pending_;

  /// Virtual-time marks of every admitted request, for the queue-depth
  /// and quota counts (tenant, start, finish).
  struct Mark {
    std::string tenant;
    support::VirtualSeconds start_vt = 0.0;
    support::VirtualSeconds finish_vt = 0.0;
  };
  std::vector<Mark> marks_;
  support::VirtualSeconds last_arrival_vt_ = 0.0;

  std::uint64_t next_id_ = 1;
  bool accepting_ = true;  // flips at shutdown: submits shed kShutdown
  bool stopping_ = false;  // workers exit once queues are empty
  ServerStats stats_;

  // Serve metric families. One shard; every write happens under mu_.
  viz::MetricsRegistry metrics_;
  int queue_depth_id_ = -1;
  int sessions_total_id_ = -1;
  int coalesced_id_ = -1;
  int completed_id_ = -1;
  int errors_id_ = -1;
  int latency_hist_id_ = -1;
  int queue_hist_id_ = -1;
  std::map<std::string, int> admitted_ids_;                 // by tenant
  std::map<std::pair<std::string, std::string>, int> shed_ids_;
  std::map<std::uint64_t, int> fleet_session_ids_;          // by program key

  std::vector<std::thread> workers_;
};

}  // namespace sage::serve

namespace sage::runtime {
/// The service front end lives in sage::serve; this alias keeps the
/// runtime-layer spelling working for callers that reach it from the
/// executor side.
using Server = serve::Server;
}  // namespace sage::runtime
