// openSAGE -- deterministic open-loop load generation for serve::Server.
//
// The headline serve artifact is a load curve: p50/p99 latency and
// throughput vs. offered load. Both halves are deterministic:
//
//   * arrivals come from a seeded Poisson process realized with an
//     explicit inverse-CDF transform over std::mt19937 draws (the
//     standard library's exponential_distribution algorithm is
//     implementation-defined; the generator below is pinned bit-for-bit
//     everywhere);
//   * the server's admission/latency accounting runs in virtual time
//     (see server.hpp), so the whole measured curve is a pure function
//     of (schedule, calibration) -- host speed changes throughput of
//     the *bench binary*, never the numbers it reports.
//
// Open loop means arrivals do not wait for completions: every request
// is submitted with its schedule timestamp regardless of how far the
// fleet has fallen behind, which is what exposes queueing collapse
// beyond the saturation rate.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/server.hpp"
#include "support/clock.hpp"

namespace sage::serve {

/// Cumulative arrival timestamps (virtual seconds) of a Poisson process
/// with the given mean `rate` (arrivals per virtual second).
/// Deterministic for a fixed (count, rate, seed).
std::vector<support::VirtualSeconds> poisson_arrivals(int count, double rate,
                                                      std::uint64_t seed);

/// One measured point of the load curve.
struct LoadPoint {
  double offered_rate = 0.0;  // arrivals per virtual second
  int requests = 0;
  int admitted = 0;
  int shed = 0;
  int errors = 0;
  int coalesced = 0;
  /// First arrival to last completion, virtual seconds.
  support::VirtualSeconds span_vt = 0.0;
  /// Completions per virtual second over the span.
  double throughput = 0.0;
  support::VirtualSeconds p50_latency_vt = 0.0;
  support::VirtualSeconds p99_latency_vt = 0.0;
  support::VirtualSeconds mean_latency_vt = 0.0;
  support::VirtualSeconds max_latency_vt = 0.0;
};

/// Drives one open-loop run: submits every arrival in schedule order
/// against `program` (sheds are counted, never retried), waits for all
/// admitted requests, and reduces the responses to a LoadPoint.
/// `offered_rate` is recorded in the result verbatim.
LoadPoint drive_load(Server& server, std::uint64_t program,
                     const std::vector<support::VirtualSeconds>& arrivals,
                     double offered_rate, const std::string& tenant = "default");

}  // namespace sage::serve
