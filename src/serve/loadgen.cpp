#include "serve/loadgen.hpp"

#include <algorithm>
#include <cmath>
#include <random>

#include "support/error.hpp"

namespace sage::serve {

std::vector<support::VirtualSeconds> poisson_arrivals(int count, double rate,
                                                      std::uint64_t seed) {
  SAGE_CHECK_AS(RuntimeError, rate > 0.0,
                "poisson_arrivals needs a positive rate, got ", rate);
  std::vector<support::VirtualSeconds> arrivals;
  arrivals.reserve(static_cast<std::size_t>(std::max(0, count)));
  // mt19937's sequence is fully specified by the standard; the inverse
  // CDF keeps the transform specified too (std::exponential_distribution
  // is not pinned across library implementations).
  std::mt19937 gen(static_cast<std::uint32_t>(seed));
  support::VirtualSeconds t = 0.0;
  for (int i = 0; i < count; ++i) {
    const double u =
        (static_cast<double>(gen()) + 0.5) / 4294967296.0;  // (0, 1)
    t += -std::log1p(-u) / rate;
    arrivals.push_back(t);
  }
  return arrivals;
}

namespace {

support::VirtualSeconds percentile(
    const std::vector<support::VirtualSeconds>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  // Nearest-rank: smallest value with at least q of the mass below it.
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[std::min(sorted.size() - 1, rank == 0 ? 0 : rank - 1)];
}

}  // namespace

LoadPoint drive_load(Server& server, std::uint64_t program,
                     const std::vector<support::VirtualSeconds>& arrivals,
                     double offered_rate, const std::string& tenant) {
  LoadPoint point;
  point.offered_rate = offered_rate;
  point.requests = static_cast<int>(arrivals.size());

  std::vector<ServeTicket> admitted;
  admitted.reserve(arrivals.size());
  for (const support::VirtualSeconds arrival : arrivals) {
    RunRequest request;
    request.tenant = tenant;
    request.arrival_vt = arrival;
    const ServeTicket ticket = server.submit(program, request);
    if (ticket.admitted()) {
      admitted.push_back(ticket);
    } else {
      ++point.shed;
    }
  }
  point.admitted = static_cast<int>(admitted.size());

  std::vector<support::VirtualSeconds> latencies;
  latencies.reserve(admitted.size());
  support::VirtualSeconds first_arrival =
      arrivals.empty() ? 0.0 : arrivals.front();
  support::VirtualSeconds last_finish = first_arrival;
  double latency_sum = 0.0;
  for (const ServeTicket& ticket : admitted) {
    const Response response = server.wait(ticket);
    if (!response.ok()) ++point.errors;
    latencies.push_back(response.latency_vt());
    latency_sum += response.latency_vt();
    last_finish = std::max(last_finish, response.finish_vt);
    if (response.coalesced) ++point.coalesced;
  }

  std::sort(latencies.begin(), latencies.end());
  point.span_vt = last_finish - first_arrival;
  point.throughput = point.span_vt > 0.0
                         ? static_cast<double>(point.admitted) / point.span_vt
                         : 0.0;
  point.p50_latency_vt = percentile(latencies, 0.50);
  point.p99_latency_vt = percentile(latencies, 0.99);
  point.mean_latency_vt =
      latencies.empty() ? 0.0
                        : latency_sum / static_cast<double>(latencies.size());
  point.max_latency_vt = latencies.empty() ? 0.0 : latencies.back();
  return point;
}

}  // namespace sage::serve
