#include "serve/server.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "runtime/compiler.hpp"
#include "support/error.hpp"

namespace sage::serve {

const char* to_string(Admission admission) {
  switch (admission) {
    case Admission::kAdmitted: return "admitted";
    case Admission::kQueueFull: return "queue-full";
    case Admission::kTenantQuota: return "tenant-quota";
    case Admission::kUnknownProgram: return "unknown-program";
    case Admission::kShutdown: return "shutdown";
  }
  return "?";
}

/// One admitted request flowing through the scheduler. The admission
/// path fills the virtual-time plan; a worker fills the execution
/// outcome and flips `done` under the server lock.
struct Server::Pending {
  std::uint64_t id = 0;
  std::string tenant;
  runtime::RunOverrides overrides;
  support::VirtualSeconds arrival_vt = 0.0;
  support::VirtualSeconds start_vt = 0.0;
  support::VirtualSeconds finish_vt = 0.0;
  bool coalesced = false;
  int session_index = -1;
  std::uint64_t fleet_key = 0;

  bool done = false;
  std::string error;
  runtime::RunStats stats;
};

/// One warm session of a fleet. `active` marks a worker currently
/// driving the session (Sessions are single-host-threaded); the queue
/// holds admitted requests planned onto this slot, in arrival order.
struct Server::Slot {
  std::unique_ptr<runtime::Session> session;
  support::VirtualSeconds busy_until = 0.0;
  std::deque<std::shared_ptr<Pending>> queue;
  bool active = false;
};

struct Server::Fleet {
  std::uint64_t key = 0;
  std::string name;
  std::shared_ptr<const runtime::CompiledProgram> program;
  runtime::FunctionRegistry registry;
  runtime::ExecuteOptions options;
  int cap = 1;
  support::VirtualSeconds latency_vt = 0.0;
  support::VirtualSeconds period_vt = 0.0;
  std::vector<std::unique_ptr<Slot>> slots;
};

namespace {

/// Latency/queueing histogram bounds: decades from 100us to 10s, the
/// range the emulated platforms' virtual run times live in.
std::vector<double> latency_buckets() {
  return {1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2,
          5e-2, 1e-1, 2.5e-1, 5e-1, 1.0, 2.5, 5.0, 10.0};
}

std::string hex_key(std::uint64_t key) {
  std::ostringstream os;
  os << std::hex << key;
  return os.str();
}

}  // namespace

Server::Server(ServerOptions options) : options_(std::move(options)) {
  SAGE_CHECK_AS(RuntimeError, options_.workers >= 1,
                "Server needs at least one worker, got ", options_.workers);
  SAGE_CHECK_AS(RuntimeError, options_.max_sessions_per_program >= 1,
                "Server needs a session cap >= 1, got ",
                options_.max_sessions_per_program);
  SAGE_CHECK_AS(RuntimeError, options_.max_queue_depth >= 0,
                "Server needs a queue bound >= 0, got ",
                options_.max_queue_depth);

  queue_depth_id_ = metrics_.gauge(
      viz::families::kServeQueueDepth,
      "Peak number of admitted requests waiting (virtually queued)",
      viz::Aggregation::kMax);
  sessions_total_id_ = metrics_.gauge(
      viz::families::kServeSessions, "Warm sessions across all fleets");
  coalesced_id_ = metrics_.counter(
      viz::families::kServeCoalesced,
      "Requests that rode an already-streaming session epoch");
  completed_id_ = metrics_.counter(viz::families::kServeCompleted,
                                   "Requests completed by the fleet");
  errors_id_ = metrics_.counter(viz::families::kServeErrors,
                                "Requests that failed in execution");
  latency_hist_id_ = metrics_.histogram(
      viz::families::kServeLatency,
      "End-to-end request latency (queueing + service, virtual seconds)",
      latency_buckets());
  queue_hist_id_ = metrics_.histogram(
      viz::families::kServeQueueSeconds,
      "Queueing delay before service (virtual seconds)", latency_buckets());

  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (int w = 0; w < options_.workers; ++w) {
    workers_.emplace_back([this] { worker_(); });
  }
}

Server::~Server() { shutdown(); }

void Server::calibrate_(Fleet& fleet) {
  if (options_.calibration_latency > 0.0 &&
      options_.calibration_period > 0.0) {
    fleet.latency_vt = options_.calibration_latency;
    fleet.period_vt =
        std::min(options_.calibration_period, options_.calibration_latency);
    return;
  }
  // The fleet's first session doubles as the calibration bench: one
  // solo run pins the unloaded latency, a short stream pins the
  // steady-state period. Both are virtual times, so the calibration --
  // and everything the admission model derives from it -- is
  // deterministic and machine-independent.
  Slot& slot = *fleet.slots.front();
  const runtime::RunStats solo = slot.session->run();
  fleet.latency_vt = solo.makespan;

  double period_sum = 0.0;
  int period_count = 0;
  std::vector<runtime::Ticket> tickets;
  tickets.reserve(static_cast<std::size_t>(options_.calibration_sets));
  for (int i = 0; i < options_.calibration_sets; ++i) {
    tickets.push_back(slot.session->submit());
  }
  for (const runtime::Ticket ticket : tickets) {
    const runtime::RunStats stats = slot.session->wait(ticket);
    if (stats.stream_period > 0.0) {
      period_sum += stats.stream_period;
      ++period_count;
    }
  }
  fleet.period_vt =
      period_count > 0 ? period_sum / period_count : fleet.latency_vt;
  // A period beyond the solo latency means the "pipeline" serializes;
  // clamp so the model never claims coalescing is slower than solo.
  fleet.period_vt = std::min(fleet.period_vt, fleet.latency_vt);
}

std::uint64_t Server::add_program(
    std::string name, std::shared_ptr<const runtime::CompiledProgram> program,
    const runtime::FunctionRegistry& registry,
    std::optional<int> session_cap) {
  SAGE_CHECK_AS(RuntimeError, program != nullptr,
                "add_program needs a program");
  const std::uint64_t key = program->fingerprint;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = fleet_by_key_.find(key);
    if (it != fleet_by_key_.end()) return key;  // idempotent
  }

  // Build and calibrate the fleet's first session outside the lock --
  // machine spawn and the calibration stream are the expensive part,
  // and the fleet is invisible to submissions until registered below.
  auto fleet = std::make_unique<Fleet>();
  fleet->key = key;
  fleet->name = std::move(name);
  fleet->program = std::move(program);
  fleet->registry = registry;
  fleet->options = options_.execute;
  fleet->cap = std::max(1, session_cap.value_or(
                               options_.max_sessions_per_program));
  auto slot = std::make_unique<Slot>();
  slot->session = std::make_unique<runtime::Session>(fleet->program,
                                                     fleet->registry,
                                                     fleet->options);
  fleet->slots.push_back(std::move(slot));
  calibrate_(*fleet);

  std::lock_guard<std::mutex> lock(mu_);
  const auto it = fleet_by_key_.find(key);
  if (it != fleet_by_key_.end()) return key;  // raced: keep the first
  fleet_by_key_[key] = fleets_.size();
  fleet_session_ids_[key] = metrics_.gauge(
      viz::families::kServeSessions, "Warm sessions serving this program",
      viz::Aggregation::kSum, {{"program", hex_key(key)}});
  metrics_.set(0, fleet_session_ids_[key], 1.0);
  ++stats_.sessions;
  metrics_.set(0, sessions_total_id_, static_cast<double>(stats_.sessions));
  fleets_.push_back(std::move(fleet));
  return key;
}

std::uint64_t Server::add_program(std::string name, runtime::GlueConfig config,
                                  const runtime::FunctionRegistry& registry,
                                  std::optional<int> session_cap) {
  std::shared_ptr<const runtime::CompiledProgram> program =
      runtime::compile_or_load(std::move(config), registry,
                               options_.execute.plan_cache_dir);
  return add_program(std::move(name), std::move(program), registry,
                     session_cap);
}

void Server::set_quota(const std::string& tenant, TenantQuota quota) {
  std::lock_guard<std::mutex> lock(mu_);
  quotas_[tenant] = quota;
}

int Server::waiting_at_locked_(support::VirtualSeconds arrival) const {
  int waiting = 0;
  for (const Mark& mark : marks_) {
    if (mark.start_vt > arrival) ++waiting;
  }
  return waiting;
}

int Server::tenant_in_flight_at_locked_(
    const std::string& tenant, support::VirtualSeconds arrival) const {
  int in_flight = 0;
  for (const Mark& mark : marks_) {
    if (mark.tenant == tenant && mark.finish_vt > arrival) ++in_flight;
  }
  return in_flight;
}

int Server::admitted_series_locked_(const std::string& tenant) {
  const auto it = admitted_ids_.find(tenant);
  if (it != admitted_ids_.end()) return it->second;
  const int id = metrics_.counter(viz::families::kServeAdmitted,
                                  "Requests admitted past admission control",
                                  {{"tenant", tenant}});
  admitted_ids_[tenant] = id;
  return id;
}

int Server::shed_series_locked_(const std::string& tenant, Admission reason) {
  const auto key = std::make_pair(tenant, std::string(to_string(reason)));
  const auto it = shed_ids_.find(key);
  if (it != shed_ids_.end()) return it->second;
  const int id = metrics_.counter(
      viz::families::kServeShed, "Requests shed by admission control",
      {{"tenant", tenant}, {"reason", key.second}});
  shed_ids_[key] = id;
  return id;
}

ServeTicket Server::shed_locked_(const std::string& tenant,
                                 Admission reason) {
  ++stats_.submitted;
  ++stats_.tenants[tenant].shed;
  switch (reason) {
    case Admission::kQueueFull: ++stats_.shed_queue; break;
    case Admission::kTenantQuota: ++stats_.shed_quota; break;
    case Admission::kShutdown: ++stats_.shed_shutdown; break;
    case Admission::kUnknownProgram: ++stats_.shed_unknown; break;
    case Admission::kAdmitted: break;
  }
  metrics_.add(0, shed_series_locked_(tenant, reason), 1.0);
  ServeTicket ticket;
  ticket.id = next_id_++;
  ticket.admission = reason;
  return ticket;
}

void Server::grow_fleet_locked_(Fleet& fleet) {
  auto slot = std::make_unique<Slot>();
  slot->session = std::make_unique<runtime::Session>(fleet.program,
                                                     fleet.registry,
                                                     fleet.options);
  fleet.slots.push_back(std::move(slot));
  ++stats_.sessions;
  metrics_.set(0, sessions_total_id_, static_cast<double>(stats_.sessions));
  metrics_.set(0, fleet_session_ids_[fleet.key],
               static_cast<double>(fleet.slots.size()));
}

ServeTicket Server::submit(std::uint64_t program, RunRequest request) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!accepting_) return shed_locked_(request.tenant, Admission::kShutdown);
  const auto fleet_it = fleet_by_key_.find(program);
  if (fleet_it == fleet_by_key_.end()) {
    return shed_locked_(request.tenant, Admission::kUnknownProgram);
  }
  Fleet& fleet = *fleets_[fleet_it->second];

  const support::VirtualSeconds arrival =
      request.arrival_vt >= 0.0 ? request.arrival_vt : last_arrival_vt_;
  last_arrival_vt_ = std::max(last_arrival_vt_, arrival);

  // Quotas first: a tenant over its limits is shed before it can claim
  // queue space.
  const auto quota_it = quotas_.find(request.tenant);
  if (quota_it != quotas_.end()) {
    const TenantQuota& quota = quota_it->second;
    if (quota.max_requests > 0 &&
        stats_.tenants[request.tenant].admitted >= quota.max_requests) {
      return shed_locked_(request.tenant, Admission::kTenantQuota);
    }
    if (quota.max_in_flight > 0 &&
        tenant_in_flight_at_locked_(request.tenant, arrival) >=
            quota.max_in_flight) {
      return shed_locked_(request.tenant, Admission::kTenantQuota);
    }
  }

  // Bounded queue: shed instead of waiting behind a full backlog.
  const int waiting = waiting_at_locked_(arrival);
  if (waiting >= options_.max_queue_depth &&
      // A request that would start immediately occupies no queue slot.
      [&] {
        for (const auto& slot : fleet.slots) {
          if (slot->busy_until <= arrival) return false;
        }
        return static_cast<int>(fleet.slots.size()) >= fleet.cap;
      }()) {
    return shed_locked_(request.tenant, Admission::kQueueFull);
  }

  // Assignment: least-loaded warm session (min busy-until, ties to the
  // lowest slot), growing the fleet by one when everyone is busy at the
  // arrival instant and the cap allows.
  std::size_t chosen = 0;
  for (std::size_t s = 1; s < fleet.slots.size(); ++s) {
    if (fleet.slots[s]->busy_until < fleet.slots[chosen]->busy_until) {
      chosen = s;
    }
  }
  if (fleet.slots[chosen]->busy_until > arrival &&
      static_cast<int>(fleet.slots.size()) < fleet.cap) {
    grow_fleet_locked_(fleet);
    chosen = fleet.slots.size() - 1;
  }
  Slot& slot = *fleet.slots[chosen];

  auto pending = std::make_shared<Pending>();
  pending->id = next_id_++;
  pending->tenant = request.tenant;
  pending->overrides = request.overrides;
  pending->arrival_vt = arrival;
  pending->fleet_key = fleet.key;
  pending->session_index = static_cast<int>(chosen);
  if (slot.busy_until <= arrival) {
    // Idle start: the request opens (or re-opens) the pipeline and pays
    // the full solo latency.
    pending->start_vt = arrival;
    pending->finish_vt = arrival + fleet.latency_vt;
    pending->coalesced = false;
  } else {
    // Back-to-back start: the request rides the session's streaming
    // epoch and advances the clock by one steady-state period.
    pending->start_vt = slot.busy_until;
    pending->finish_vt = slot.busy_until + fleet.period_vt;
    pending->coalesced = true;
    ++stats_.coalesced;
    metrics_.add(0, coalesced_id_, 1.0);
  }
  slot.busy_until = pending->finish_vt;

  marks_.push_back(Mark{pending->tenant, pending->start_vt,
                        pending->finish_vt});
  ++stats_.submitted;
  ++stats_.admitted;
  ++stats_.tenants[pending->tenant].admitted;
  stats_.peak_queue_depth = std::max(
      stats_.peak_queue_depth,
      waiting + (pending->start_vt > pending->arrival_vt ? 1 : 0));
  metrics_.set(0, queue_depth_id_,
               static_cast<double>(stats_.peak_queue_depth));
  metrics_.add(0, admitted_series_locked_(pending->tenant), 1.0);
  metrics_.observe(0, latency_hist_id_,
                   pending->finish_vt - pending->arrival_vt);
  metrics_.observe(0, queue_hist_id_,
                   pending->start_vt - pending->arrival_vt);

  ServeTicket ticket;
  ticket.id = pending->id;
  pending_[pending->id] = pending;
  slot.queue.push_back(std::move(pending));
  lock.unlock();
  work_cv_.notify_all();
  return ticket;
}

Server::Slot* Server::claim_locked_() {
  for (const auto& fleet : fleets_) {
    for (const auto& slot : fleet->slots) {
      if (!slot->active && !slot->queue.empty()) return slot.get();
    }
  }
  return nullptr;
}

void Server::complete_locked_(Pending& pending) {
  pending.done = true;
  ++stats_.completed;
  ++stats_.tenants[pending.tenant].completed;
  metrics_.add(0, completed_id_, 1.0);
  if (!pending.error.empty()) {
    ++stats_.errors;
    ++stats_.tenants[pending.tenant].errors;
    metrics_.add(0, errors_id_, 1.0);
  }
}

void Server::worker_() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    Slot* slot = nullptr;
    work_cv_.wait(lock, [&] {
      slot = claim_locked_();
      return stopping_ || slot != nullptr;
    });
    if (slot == nullptr) return;  // stopping, queues empty
    slot->active = true;
    while (!slot->queue.empty()) {
      // Take the whole backlog as one batch: every request submits onto
      // the session before the first wait, so the batch shares one
      // streaming epoch (the request-coalescing path).
      std::vector<std::shared_ptr<Pending>> batch(slot->queue.begin(),
                                                  slot->queue.end());
      slot->queue.clear();
      lock.unlock();

      std::vector<std::optional<runtime::Ticket>> tickets(batch.size());
      for (std::size_t i = 0; i < batch.size(); ++i) {
        try {
          tickets[i] = slot->session->submit(batch[i]->overrides);
        } catch (const std::exception& e) {
          batch[i]->error = e.what();
        }
      }
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (tickets[i].has_value()) {
          try {
            batch[i]->stats = slot->session->wait(*tickets[i]);
          } catch (const std::exception& e) {
            batch[i]->error = e.what();
          }
        }
        std::lock_guard<std::mutex> done_lock(mu_);
        complete_locked_(*batch[i]);
        done_cv_.notify_all();
      }

      lock.lock();
    }
    slot->active = false;
  }
}

bool Server::poll(const ServeTicket& ticket) const {
  SAGE_CHECK_AS(RuntimeError, ticket.admitted(), "Server::poll on a ticket "
                "shed by admission control (", to_string(ticket.admission),
                ")");
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = pending_.find(ticket.id);
  SAGE_CHECK_AS(RuntimeError, it != pending_.end(),
                "Server::poll: unknown or already-collected ticket ",
                ticket.id);
  return it->second->done;
}

Response Server::wait(const ServeTicket& ticket) {
  SAGE_CHECK_AS(RuntimeError, ticket.admitted(), "Server::wait on a ticket "
                "shed by admission control (", to_string(ticket.admission),
                ")");
  std::shared_ptr<Pending> pending;
  {
    std::unique_lock<std::mutex> lock(mu_);
    const auto it = pending_.find(ticket.id);
    SAGE_CHECK_AS(RuntimeError, it != pending_.end(),
                  "Server::wait: unknown or already-collected ticket ",
                  ticket.id);
    pending = it->second;
    done_cv_.wait(lock, [&] { return pending->done; });
    pending_.erase(ticket.id);
  }
  Response response;
  response.id = pending->id;
  response.tenant = pending->tenant;
  response.error = pending->error;
  response.stats = std::move(pending->stats);
  response.arrival_vt = pending->arrival_vt;
  response.start_vt = pending->start_vt;
  response.finish_vt = pending->finish_vt;
  response.coalesced = pending->coalesced;
  response.session_index = pending->session_index;
  return response;
}

std::vector<Response> Server::drain() {
  std::vector<std::uint64_t> ids;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ids.reserve(pending_.size());
    for (const auto& [id, pending] : pending_) ids.push_back(id);
  }
  std::vector<Response> all;
  all.reserve(ids.size());
  for (const std::uint64_t id : ids) {
    ServeTicket ticket;
    ticket.id = id;
    all.push_back(wait(ticket));
  }
  return all;
}

Response Server::run(std::uint64_t program, RunRequest request) {
  const ServeTicket ticket = submit(program, std::move(request));
  SAGE_CHECK_AS(RuntimeError, ticket.admitted(), "Server::run: request shed (",
                to_string(ticket.admission), ")");
  return wait(ticket);
}

int Server::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(pending_.size());
}

ProgramInfo Server::program_info(std::uint64_t program) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = fleet_by_key_.find(program);
  SAGE_CHECK_AS(RuntimeError, it != fleet_by_key_.end(),
                "program_info: unknown program ", program);
  const Fleet& fleet = *fleets_[it->second];
  ProgramInfo info;
  info.key = fleet.key;
  info.name = fleet.name;
  info.solo_latency_vt = fleet.latency_vt;
  info.stream_period_vt = fleet.period_vt;
  info.sessions = static_cast<int>(fleet.slots.size());
  info.session_cap = fleet.cap;
  return info;
}

std::vector<ProgramInfo> Server::programs() const {
  std::vector<std::uint64_t> keys;
  {
    std::lock_guard<std::mutex> lock(mu_);
    keys.reserve(fleets_.size());
    for (const auto& fleet : fleets_) keys.push_back(fleet->key);
  }
  std::vector<ProgramInfo> all;
  all.reserve(keys.size());
  for (const std::uint64_t key : keys) all.push_back(program_info(key));
  return all;
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

viz::MetricsSnapshot Server::metrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  return metrics_.snapshot();
}

void Server::shutdown() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    accepting_ = false;
    // Admitted work still completes: wait for the workers to land every
    // pending request before telling them to exit.
    done_cv_.wait(lock, [&] {
      for (const auto& [id, pending] : pending_) {
        if (!pending->done) return false;
      }
      return true;
    });
    if (stopping_) return;  // idempotent: a previous call already joined
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  // Sessions close with their fleets at destruction; collected
  // responses were moved out, uncollected ones stay redeemable.
}

}  // namespace sage::serve
