#include "core/project.hpp"

#include "atot/mapper.hpp"
#include "model/hardware.hpp"
#include "model/mapping.hpp"
#include "runtime/compiler.hpp"
#include "support/error.hpp"

namespace sage::core {

Project::Project(std::unique_ptr<model::Workspace> workspace)
    : workspace_(std::move(workspace)),
      registry_(runtime::standard_registry()) {
  SAGE_CHECK(workspace_ != nullptr, "Project needs a workspace");
}

void Project::set_registry(runtime::FunctionRegistry registry) {
  registry_ = std::move(registry);
  program_.reset();  // programs are fingerprinted against the registry
}

const codegen::GeneratedArtifacts& Project::generate() {
  if (!artifacts_.has_value()) {
    artifacts_ = codegen::generate_glue(*workspace_);
  }
  return *artifacts_;
}

const codegen::GeneratedArtifacts& Project::generate(bool force) {
  if (force) invalidate();
  return generate();
}

runtime::ExecuteOptions Project::resolve_options_(
    runtime::ExecuteOptions options) {
  const model::ModelObject& hw = workspace_->hardware();
  if (!options.fabric.has_value()) {
    options.fabric = model::to_fabric_model(hw);
  }
  if (options.cpu_scales.empty()) {
    const int nodes = static_cast<int>(model::processors(hw).size());
    options.cpu_scales.reserve(static_cast<std::size_t>(nodes));
    for (int r = 0; r < nodes; ++r) {
      options.cpu_scales.push_back(model::cpu_scale_of_rank(hw, r));
    }
  }
  return options;
}

std::shared_ptr<const runtime::CompiledProgram> Project::compile_program(
    const runtime::ExecuteOptions& options) {
  if (program_ == nullptr) {
    const codegen::GeneratedArtifacts& artifacts = generate();
    program_ = runtime::compile_or_load(artifacts.config, registry_,
                                        options.plan_cache_dir);
  }
  return program_;
}

runtime::ExecuteOptions Project::resolved_options(
    const runtime::ExecuteOptions& options) {
  return resolve_options_(options);
}

std::unique_ptr<runtime::Session> Project::open_session(
    const runtime::ExecuteOptions& options) {
  return std::make_unique<runtime::Session>(compile_program(options),
                                            registry_,
                                            resolve_options_(options));
}

Result<std::unique_ptr<runtime::Session>> Project::try_open_session(
    const runtime::ExecuteOptions& options) {
  try {
    return Result<std::unique_ptr<runtime::Session>>::success(
        open_session(options));
  } catch (const std::exception& e) {
    return Result<std::unique_ptr<runtime::Session>>::failure(e.what());
  }
}

runtime::RunStats Project::execute(const runtime::ExecuteOptions& options) {
  return open_session(options)->run();
}

atot::CostBreakdown Project::remap_on_survivors(
    const std::vector<int>& dead_ranks) {
  atot::MappingProblem problem = atot::build_problem(*workspace_);
  problem.proc_dead = dead_ranks;

  // Re-map with the GA seeded from the incumbent assignment (stranded
  // threads repaired onto the least-loaded survivor first, the same
  // tie-to-lowest-rank rule Session::recover() applies), instead of
  // restarting from scratch: elitism makes the result strictly no worse
  // than the repaired incumbent, and the search starts next to a
  // placement that was already good for the surviving topology.
  atot::GeneticOptions ga;
  const model::MappingView view(workspace_->root(), workspace_->mapping());
  bool have_incumbent = true;
  atot::Assignment incumbent(static_cast<std::size_t>(problem.task_count()),
                             0);
  for (const atot::Task& task : problem.tasks) {
    if (!view.is_mapped(task.function)) {
      have_incumbent = false;
      break;
    }
    const std::vector<int> ranks = view.ranks_of(task.function);
    incumbent[static_cast<std::size_t>(task.id)] =
        ranks[static_cast<std::size_t>(task.thread) % ranks.size()];
  }
  if (have_incumbent) {
    std::vector<int> load(static_cast<std::size_t>(problem.proc_count()), 0);
    for (const int p : incumbent) {
      if (problem.proc_alive(p)) ++load[static_cast<std::size_t>(p)];
    }
    for (int& p : incumbent) {
      if (problem.proc_alive(p)) continue;
      int best = -1;
      for (int r = 0; r < problem.proc_count(); ++r) {
        if (!problem.proc_alive(r)) continue;
        if (best == -1 || load[static_cast<std::size_t>(r)] <
                              load[static_cast<std::size_t>(best)]) {
          best = r;
        }
      }
      p = best;
      ++load[static_cast<std::size_t>(best)];
    }
    ga.seeds.push_back(std::move(incumbent));
  }

  const atot::GeneticResult result = atot::genetic_mapping(problem, ga);
  atot::apply_assignment(*workspace_, problem, result.best);
  invalidate();
  return result.cost;
}

}  // namespace sage::core
