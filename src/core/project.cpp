#include "core/project.hpp"

#include "model/hardware.hpp"
#include "support/error.hpp"

namespace sage::core {

Project::Project(std::unique_ptr<model::Workspace> workspace)
    : workspace_(std::move(workspace)),
      registry_(runtime::standard_registry()) {
  SAGE_CHECK(workspace_ != nullptr, "Project needs a workspace");
}

void Project::set_registry(runtime::FunctionRegistry registry) {
  registry_ = std::move(registry);
}

const codegen::GeneratedArtifacts& Project::generate(bool force) {
  if (force || !artifacts_.has_value()) {
    artifacts_ = codegen::generate_glue(*workspace_);
  }
  return *artifacts_;
}

runtime::RunStats Project::execute(const ExecuteOptions& options) {
  const codegen::GeneratedArtifacts& artifacts = generate();

  const model::ModelObject& hw = workspace_->hardware();
  runtime::EngineOptions engine_options;
  engine_options.buffer_policy = options.buffer_policy;
  engine_options.iterations = options.iterations;
  engine_options.collect_trace = options.collect_trace;
  engine_options.fabric = model::to_fabric_model(hw);
  const int nodes = static_cast<int>(model::processors(hw).size());
  engine_options.cpu_scales.reserve(static_cast<std::size_t>(nodes));
  for (int r = 0; r < nodes; ++r) {
    engine_options.cpu_scales.push_back(model::cpu_scale_of_rank(hw, r));
  }

  runtime::Engine engine(artifacts.config, registry_, engine_options);
  return engine.run();
}

}  // namespace sage::core
