// openSAGE -- vendor platform presets.
//
// The MITRE cross-vendor study measured CSPI, Mercury, SKY and SIGI
// machines; these helpers build the corresponding hardware models
// (fabric preset + CPU parameters) so a design can be re-targeted by
// swapping one call -- the paper's portability workflow.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "model/object.hpp"

namespace sage::core {

struct VendorPlatform {
  std::string key;            // "cspi" | "mercury" | "sky" | "sigi"
  std::string fabric_preset;  // sage::net preset name
  double mhz = 200.0;
  double cpu_scale = 1.0;     // modeled-vs-host compute time ratio
  int processors_per_board = 4;
};

/// All known vendor presets.
const std::vector<VendorPlatform>& vendor_platforms();

/// Preset by key; throws sage::ModelError for unknown vendors.
const VendorPlatform& vendor_platform(std::string_view key);

/// Adds a hardware model for the vendor with exactly `nodes` processors
/// (full boards plus a partial last board).
model::ModelObject& add_vendor_platform(model::ModelObject& root,
                                        std::string_view key, int nodes);

/// Re-targets an existing hardware model at another vendor in place
/// (fabric preset + per-processor mhz/cpu_scale); the board layout is
/// kept so the mapping stays valid.
void retarget_hardware(model::ModelObject& hardware, std::string_view key);

}  // namespace sage::core
