// openSAGE -- the top-level facade: one Project owns a design workspace
// and drives the paper's pipeline end to end:
//
//   Designer (model) -> [AToT mapping] -> Alter glue generation ->
//   run-time execution on the emulated platform -> Visualizer trace.
//
// This is the API the examples and benchmark harnesses use.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "codegen/generator.hpp"
#include "model/workspace.hpp"
#include "runtime/engine.hpp"
#include "runtime/registry.hpp"

namespace sage::core {

struct ExecuteOptions {
  runtime::BufferPolicy buffer_policy =
      runtime::BufferPolicy::kUniquePerFunction;
  int iterations = 1;
  bool collect_trace = true;
};

class Project {
 public:
  /// Takes ownership of a workspace (usually from a builder in
  /// sage::apps or hand-assembled through the model API).
  explicit Project(std::unique_ptr<model::Workspace> workspace);

  model::Workspace& workspace() { return *workspace_; }
  const model::Workspace& workspace() const { return *workspace_; }

  /// Replaces the kernel registry (defaults to standard_registry()).
  void set_registry(runtime::FunctionRegistry registry);
  const runtime::FunctionRegistry& registry() const { return registry_; }

  /// Runs the Alter glue-code generator; caches and returns the
  /// artifacts. Re-generates when `force` (e.g. after model edits).
  const codegen::GeneratedArtifacts& generate(bool force = false);

  /// Generates (if needed) and executes on the emulated platform
  /// described by the workspace's hardware model.
  runtime::RunStats execute(const ExecuteOptions& options = {});

  /// Invalidates cached artifacts after a model edit.
  void invalidate() { artifacts_.reset(); }

 private:
  std::unique_ptr<model::Workspace> workspace_;
  runtime::FunctionRegistry registry_;
  std::optional<codegen::GeneratedArtifacts> artifacts_;
};

}  // namespace sage::core
