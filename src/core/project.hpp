// openSAGE -- the top-level facade: one Project owns a design workspace
// and drives the paper's pipeline end to end:
//
//   Designer (model) -> [AToT mapping] -> Alter glue generation ->
//   run-time execution on the emulated platform -> Visualizer trace.
//
// This is the API the examples and benchmark harnesses use. The
// preferred execution path is open_session(): it generates glue (if
// needed), fills any unset execution options from the workspace's
// hardware model, and returns a warm runtime::Session whose repeated
// run() calls reuse the emulated machine and all buffer memory.
// execute() remains as the one-shot convenience (open a session, run
// once).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "atot/cost_model.hpp"
#include "codegen/generator.hpp"
#include "model/workspace.hpp"
#include "runtime/program.hpp"
#include "runtime/registry.hpp"
#include "runtime/session.hpp"
#include "support/error.hpp"

namespace sage::core {

/// Deprecated name: Project now takes the unified option struct
/// directly (fabric, cpu_scales, recv_timeout_s and buffer_depth are
/// all reachable from the facade).
using ExecuteOptions [[deprecated(
    "use sage::runtime::ExecuteOptions")]] = runtime::ExecuteOptions;

class Project {
 public:
  /// Takes ownership of a workspace (usually from a builder in
  /// sage::apps or hand-assembled through the model API).
  explicit Project(std::unique_ptr<model::Workspace> workspace);

  /// Scoped mutable access to the workspace; cached glue artifacts are
  /// invalidated when the scope ends, so the next generate()/execute()
  /// sees the edits.
  class EditScope {
   public:
    explicit EditScope(Project& project) : project_(&project) {}
    EditScope(EditScope&& other) noexcept : project_(other.project_) {
      other.project_ = nullptr;
    }
    EditScope(const EditScope&) = delete;
    EditScope& operator=(const EditScope&) = delete;
    EditScope& operator=(EditScope&&) = delete;
    ~EditScope() {
      if (project_ != nullptr) project_->invalidate();
    }

    model::Workspace& operator*() const { return *project_->workspace_; }
    model::Workspace* operator->() const { return project_->workspace_.get(); }

   private:
    Project* project_;
  };

  /// Opens an auto-invalidating edit scope over the workspace:
  ///   project.edit()->add_app(...);
  ///   { auto ws = project.edit(); ws->...; ws->...; }
  EditScope edit() { return EditScope(*this); }

  model::Workspace& workspace() { return *workspace_; }
  const model::Workspace& workspace() const { return *workspace_; }

  /// Replaces the kernel registry (defaults to standard_registry()).
  void set_registry(runtime::FunctionRegistry registry);
  const runtime::FunctionRegistry& registry() const { return registry_; }

  /// Runs the Alter glue-code generator; caches and returns the
  /// artifacts. Call invalidate() (or use edit()) after model changes.
  const codegen::GeneratedArtifacts& generate();

  /// Deprecated boolean-trap form; `generate(true)` is
  /// `invalidate(); generate();`.
  [[deprecated("call invalidate() then generate()")]]
  const codegen::GeneratedArtifacts& generate(bool force);

  /// Invalidates cached artifacts (and the compiled program lowered
  /// from them) after a model edit.
  void invalidate() {
    artifacts_.reset();
    program_.reset();
  }

  /// Generates glue (if needed) and compiles it into the shared
  /// CompiledProgram every session opened by this Project executes.
  /// Consults the content-addressed plan cache when
  /// `options.plan_cache_dir` is set. Compiled once and cached until
  /// invalidate()/set_registry(); repeated open_session() calls attach
  /// new executors to the same program.
  std::shared_ptr<const runtime::CompiledProgram> compile_program(
      const runtime::ExecuteOptions& options = {});

  /// Generates (if needed) and opens a warm session on the emulated
  /// platform described by the workspace's hardware model. Options left
  /// unset are derived from the hardware model: `fabric` from the
  /// interconnect properties, `cpu_scales` from the per-processor
  /// speeds. Throws sage::ConfigError / sage::RuntimeError on
  /// inconsistency.
  std::unique_ptr<runtime::Session> open_session(
      const runtime::ExecuteOptions& options = {});

  /// The execute options open_session() would actually run with: any
  /// field left unset in `options` filled from the hardware model
  /// (`fabric` from the interconnect properties, `cpu_scales` from the
  /// per-processor speeds). For callers that construct sessions
  /// themselves -- serve::Server fleets, bare runtime::Session -- and
  /// still want the workspace's platform derivation.
  runtime::ExecuteOptions resolved_options(
      const runtime::ExecuteOptions& options = {});

  /// Non-throwing counterpart of open_session for validators and CLIs:
  /// model/config/mapping problems come back as an error message.
  Result<std::unique_ptr<runtime::Session>> try_open_session(
      const runtime::ExecuteOptions& options = {});

  /// One-shot convenience: open_session(options) and run once.
  runtime::RunStats execute(const runtime::ExecuteOptions& options = {});

  /// Degraded-mode remap at the model level: re-runs the AToT genetic
  /// mapper with `dead_ranks` excluded, seeded from the incumbent
  /// assignment (stranded threads repaired onto the least-loaded
  /// survivor first), writes the survivor-only assignment back into the
  /// mapping model, and invalidates cached glue so the next
  /// generate()/open_session() reflects the new placement. Elitism
  /// makes the result strictly no worse than the repaired incumbent.
  /// Complements runtime::Session::recover(), which patches a live
  /// session in place; this path regenerates from the model.
  /// Returns the cost breakdown of the survivor-only assignment.
  atot::CostBreakdown remap_on_survivors(const std::vector<int>& dead_ranks);

 private:
  runtime::ExecuteOptions resolve_options_(runtime::ExecuteOptions options);

  std::unique_ptr<model::Workspace> workspace_;
  runtime::FunctionRegistry registry_;
  std::optional<codegen::GeneratedArtifacts> artifacts_;
  /// One program, N sessions: cached by compile_program() and shared
  /// (read-only) by every open_session() until invalidation.
  std::shared_ptr<const runtime::CompiledProgram> program_;
};

}  // namespace sage::core
