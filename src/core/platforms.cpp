#include "core/platforms.hpp"

#include <algorithm>

#include "model/hardware.hpp"
#include "support/error.hpp"

namespace sage::core {

const std::vector<VendorPlatform>& vendor_platforms() {
  static const std::vector<VendorPlatform> platforms = {
      {"cspi", "cspi-myrinet-160", 200.0, 1.0, 4},
      {"mercury", "mercury-raceway", 250.0, 0.8, 6},
      {"sky", "sky-skychannel", 225.0, 0.9, 4},
      {"sigi", "sigi", 166.0, 1.2, 2},
  };
  return platforms;
}

const VendorPlatform& vendor_platform(std::string_view key) {
  for (const VendorPlatform& platform : vendor_platforms()) {
    if (platform.key == key) return platform;
  }
  raise<ModelError>("unknown vendor platform '", std::string(key),
                    "' (want cspi, mercury, sky, or sigi)");
}

model::ModelObject& add_vendor_platform(model::ModelObject& root,
                                        std::string_view key, int nodes) {
  SAGE_CHECK_AS(ModelError, nodes >= 1, "need at least one processor");
  const VendorPlatform& vendor = vendor_platform(key);

  model::ModelObject& hw =
      model::add_hardware(root, vendor.key, vendor.fabric_preset);
  int remaining = nodes;
  int board_index = 0;
  while (remaining > 0) {
    model::ModelObject& board = model::add_board(
        hw, vendor.key + "_board_" + std::to_string(board_index));
    const int on_board = std::min(vendor.processors_per_board, remaining);
    for (int p = 0; p < on_board; ++p) {
      model::add_processor(
          board,
          vendor.key + "_cpu_" +
              std::to_string(nodes - remaining + p),
          vendor.mhz, std::int64_t{64} << 20, vendor.cpu_scale);
    }
    remaining -= on_board;
    ++board_index;
  }
  return hw;
}

void retarget_hardware(model::ModelObject& hardware, std::string_view key) {
  SAGE_CHECK_AS(ModelError, hardware.type() == "hardware",
                "retarget_hardware of non-hardware object");
  const VendorPlatform& vendor = vendor_platform(key);
  hardware.set_property("fabric", vendor.fabric_preset);
  for (model::ModelObject* cpu : model::processors(hardware)) {
    cpu->set_property("mhz", vendor.mhz);
    cpu->set_property("cpu_scale", vendor.cpu_scale);
  }
}

}  // namespace sage::core
