#include "isspl/vector_ops.hpp"

#include <cmath>
#include <numbers>

#include "support/error.hpp"

namespace sage::isspl {

namespace {

void check_same(std::size_t a, std::size_t b, const char* what) {
  SAGE_CHECK(a == b, what, ": size mismatch (", a, " vs ", b, ")");
}

}  // namespace

void vadd(std::span<const float> a, std::span<const float> b,
          std::span<float> out) {
  check_same(a.size(), b.size(), "vadd");
  check_same(a.size(), out.size(), "vadd");
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
}

void vadd(std::span<const Complex> a, std::span<const Complex> b,
          std::span<Complex> out) {
  check_same(a.size(), b.size(), "vadd");
  check_same(a.size(), out.size(), "vadd");
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
}

void vmul(std::span<const float> a, std::span<const float> b,
          std::span<float> out) {
  check_same(a.size(), b.size(), "vmul");
  check_same(a.size(), out.size(), "vmul");
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * b[i];
}

void vmul(std::span<const Complex> a, std::span<const Complex> b,
          std::span<Complex> out) {
  check_same(a.size(), b.size(), "vmul");
  check_same(a.size(), out.size(), "vmul");
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * b[i];
}

void vscale(std::span<float> x, float s) {
  for (auto& v : x) v *= s;
}

void vscale(std::span<Complex> x, float s) {
  for (auto& v : x) v *= s;
}

void vaxpy(std::span<const float> x, float a, std::span<float> y) {
  check_same(x.size(), y.size(), "vaxpy");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += a * x[i];
}

void vmag(std::span<const Complex> x, std::span<float> out) {
  check_same(x.size(), out.size(), "vmag");
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = std::abs(x[i]);
}

void vmagsq(std::span<const Complex> x, std::span<float> out) {
  check_same(x.size(), out.size(), "vmagsq");
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = std::norm(x[i]);
}

float vsum(std::span<const float> x) {
  double acc = 0.0;
  for (float v : x) acc += v;
  return static_cast<float>(acc);
}

float vdot(std::span<const float> a, std::span<const float> b) {
  check_same(a.size(), b.size(), "vdot");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += static_cast<double>(a[i]) * b[i];
  }
  return static_cast<float>(acc);
}

std::size_t vmax_index(std::span<const float> x) {
  SAGE_CHECK(!x.empty(), "vmax_index: empty input");
  std::size_t best = 0;
  for (std::size_t i = 1; i < x.size(); ++i) {
    if (x[i] > x[best]) best = i;
  }
  return best;
}

std::vector<float> make_window(Window window, std::size_t n) {
  SAGE_CHECK(n > 0, "make_window: zero length");
  std::vector<float> w(n, 1.0f);
  const double denom = (n > 1) ? static_cast<double>(n - 1) : 1.0;
  constexpr double kTau = 2.0 * std::numbers::pi;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / denom;
    double v = 1.0;
    switch (window) {
      case Window::kRectangular:
        v = 1.0;
        break;
      case Window::kHann:
        v = 0.5 - 0.5 * std::cos(kTau * t);
        break;
      case Window::kHamming:
        v = 0.54 - 0.46 * std::cos(kTau * t);
        break;
      case Window::kBlackman:
        v = 0.42 - 0.5 * std::cos(kTau * t) + 0.08 * std::cos(2 * kTau * t);
        break;
    }
    w[i] = static_cast<float>(v);
  }
  return w;
}

void apply_window(std::span<Complex> x, std::span<const float> w) {
  check_same(x.size(), w.size(), "apply_window");
  for (std::size_t i = 0; i < x.size(); ++i) x[i] *= w[i];
}

void fir(std::span<const float> in, std::span<const float> taps,
         std::span<float> out) {
  check_same(in.size(), out.size(), "fir");
  SAGE_CHECK(!taps.empty(), "fir: empty taps");
  for (std::size_t i = 0; i < in.size(); ++i) {
    double acc = 0.0;
    const std::size_t kmax = std::min(taps.size(), i + 1);
    for (std::size_t k = 0; k < kmax; ++k) {
      acc += static_cast<double>(taps[k]) * in[i - k];
    }
    out[i] = static_cast<float>(acc);
  }
}

}  // namespace sage::isspl
