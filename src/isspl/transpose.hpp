// openSAGE -- matrix (corner-turn) kernels.
//
// The distributed corner turn reorganizes a matrix from row-striped to
// column-striped storage; locally that decomposes into block
// gather/scatter plus dense transposes. These are the single-node leaf
// kernels; the distributed versions live in sage::apps.
#pragma once

#include <complex>
#include <cstddef>
#include <span>

namespace sage::isspl {

/// out[c * rows + r] = in[r * cols + c]; cache-blocked. `in` and `out`
/// must not alias.
template <typename T>
void transpose(std::span<const T> in, std::span<T> out, std::size_t rows,
               std::size_t cols);

/// In-place transpose of a square n x n matrix.
template <typename T>
void transpose_square_inplace(std::span<T> data, std::size_t n);

/// Packs the columns [col0, col0+ncols) of a rows x cols row-major matrix
/// into a contiguous rows x ncols row-major block (the send-side step of a
/// corner turn).
template <typename T>
void pack_column_block(std::span<const T> matrix, std::size_t rows,
                       std::size_t cols, std::size_t col0, std::size_t ncols,
                       std::span<T> block);

/// Inverse of pack_column_block: scatters a rows x ncols block back into
/// the columns [col0, col0+ncols) of the matrix.
template <typename T>
void unpack_column_block(std::span<const T> block, std::size_t rows,
                         std::size_t cols, std::size_t col0, std::size_t ncols,
                         std::span<T> matrix);

extern template void transpose<std::complex<float>>(
    std::span<const std::complex<float>>, std::span<std::complex<float>>,
    std::size_t, std::size_t);
extern template void transpose<float>(std::span<const float>, std::span<float>,
                                      std::size_t, std::size_t);
extern template void transpose_square_inplace<std::complex<float>>(
    std::span<std::complex<float>>, std::size_t);
extern template void pack_column_block<std::complex<float>>(
    std::span<const std::complex<float>>, std::size_t, std::size_t,
    std::size_t, std::size_t, std::span<std::complex<float>>);
extern template void unpack_column_block<std::complex<float>>(
    std::span<const std::complex<float>>, std::size_t, std::size_t,
    std::size_t, std::size_t, std::span<std::complex<float>>);

}  // namespace sage::isspl
