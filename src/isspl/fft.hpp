// openSAGE -- ISSPL-style FFT.
//
// Stands in for the CSPI ISSPL vector library the paper's benchmarks
// linked against: plan-based, single-precision complex, power-of-two
// radix-2 with precomputed twiddles and bit-reversal table. Both the
// hand-coded benchmark and the SAGE-generated one call these same leaf
// kernels, exactly as both versions on the CSPI machine called ISSPL.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace sage::isspl {

using Complex = std::complex<float>;

enum class FftDirection { kForward, kInverse };

/// Butterfly radix. kAuto picks radix-4 for powers of four and the
/// mixed radix-4/2 factorization (one multiply-free radix-2 seed stage,
/// then radix-4 stages) for the other powers of two >= 8, so every size
/// gets radix-4's lower multiplication count. kRadix2 forces the plain
/// radix-2 ladder (reference implementation).
enum class FftAlgorithm { kAuto, kRadix2, kRadix4, kMixed42 };

/// Precomputed transform of one size/direction. Reusable across calls and
/// threads (execution is const).
class FftPlan {
 public:
  /// `n` must be a power of two >= 2 (a power of four for kRadix4).
  FftPlan(std::size_t n, FftDirection direction,
          FftAlgorithm algorithm = FftAlgorithm::kAuto);

  std::size_t size() const { return n_; }
  FftDirection direction() const { return direction_; }
  /// The radix actually selected (kAuto resolved).
  FftAlgorithm algorithm() const { return algorithm_; }

  /// In-place transform of one n-point line.
  void execute(std::span<Complex> data) const;

  /// In-place transform of `rows` contiguous n-point lines.
  void execute_rows(std::span<Complex> data, std::size_t rows) const;

  /// Out-of-place transform: applies the bit/digit-reversal permutation
  /// while loading `in` into `out`, saving the separate copy and swap
  /// passes. Bit-identical to copying `in` into `out` and running the
  /// in-place execute(). `in` and `out` must not alias.
  void execute(std::span<const Complex> in, std::span<Complex> out) const;

  /// Out-of-place transform of `rows` contiguous n-point lines.
  void execute_rows(std::span<const Complex> in, std::span<Complex> out,
                    std::size_t rows) const;

 private:
  void build_radix2();
  void build_radix4();
  void build_mixed42();
  void execute_radix2(Complex* x) const;
  void execute_radix4(Complex* x) const;
  void execute_mixed42(Complex* x) const;
  /// Radix-4 butterfly ladder from stage size `m0` (doubling by 4) up
  /// to n; shared by the radix-4 and mixed-radix paths.
  void radix4_stages_(Complex* x, std::size_t m0,
                      const Complex* stage_tw) const;
  /// Butterfly stages + inverse scaling over already-permuted data.
  void run_stages_(Complex* x) const;

  std::size_t n_;
  FftDirection direction_;
  FftAlgorithm algorithm_;
  std::vector<Complex> twiddles_;     // per-stage roots of unity
  std::vector<std::uint32_t> rev_;    // input permutation (out[i] = in[rev_[i]])
  /// In-place realization of rev_ as a swap sequence. The pure-radix
  /// reversals are involutions (swap when i < rev_[i]); the mixed-radix
  /// digit reversal is not, so its cycles are precomputed here.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> perm_swaps_;
};

/// Real-input FFT via the packed half-size complex transform: n real
/// samples in, n/2 + 1 spectrum bins (DC .. Nyquist) out -- the usual
/// front half of a radar chain digitizing real IF samples.
class RfftPlan {
 public:
  /// `n` must be a power of two >= 4.
  explicit RfftPlan(std::size_t n);

  std::size_t size() const { return n_; }
  std::size_t bins() const { return n_ / 2 + 1; }

  /// out.size() must be bins().
  void execute(std::span<const float> in, std::span<Complex> out) const;

 private:
  std::size_t n_;
  FftPlan half_;
  std::vector<Complex> unpack_tw_;  // e^(-2*pi*i*k/n), k = 0..n/2
};

/// One-shot helpers (plan construction amortized away for tests/examples).
void fft(std::span<Complex> data);
void ifft(std::span<Complex> data);

/// Full 2D FFT of a rows x cols matrix (row-major, both powers of two):
/// FFT along rows, transpose, FFT along (former) columns, transpose back.
void fft2d(std::span<Complex> data, std::size_t rows, std::size_t cols);

}  // namespace sage::isspl
