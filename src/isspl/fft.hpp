// openSAGE -- ISSPL-style FFT.
//
// Stands in for the CSPI ISSPL vector library the paper's benchmarks
// linked against: plan-based, single-precision complex, power-of-two
// radix-2 with precomputed twiddles and bit-reversal table. Both the
// hand-coded benchmark and the SAGE-generated one call these same leaf
// kernels, exactly as both versions on the CSPI machine called ISSPL.
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace sage::isspl {

using Complex = std::complex<float>;

enum class FftDirection { kForward, kInverse };

/// Butterfly radix. kAuto picks radix-4 for powers of four (fewer
/// multiplications) and radix-2 otherwise.
enum class FftAlgorithm { kAuto, kRadix2, kRadix4 };

/// Precomputed transform of one size/direction. Reusable across calls and
/// threads (execution is const).
class FftPlan {
 public:
  /// `n` must be a power of two >= 2 (a power of four for kRadix4).
  FftPlan(std::size_t n, FftDirection direction,
          FftAlgorithm algorithm = FftAlgorithm::kAuto);

  std::size_t size() const { return n_; }
  FftDirection direction() const { return direction_; }
  /// The radix actually selected (kAuto resolved).
  FftAlgorithm algorithm() const { return algorithm_; }

  /// In-place transform of one n-point line.
  void execute(std::span<Complex> data) const;

  /// In-place transform of `rows` contiguous n-point lines.
  void execute_rows(std::span<Complex> data, std::size_t rows) const;

 private:
  void build_radix2();
  void build_radix4();
  void execute_radix2(Complex* x) const;
  void execute_radix4(Complex* x) const;

  std::size_t n_;
  FftDirection direction_;
  FftAlgorithm algorithm_;
  std::vector<Complex> twiddles_;     // per-stage roots of unity
  std::vector<std::uint32_t> rev_;    // bit/digit-reversal permutation
};

/// Real-input FFT via the packed half-size complex transform: n real
/// samples in, n/2 + 1 spectrum bins (DC .. Nyquist) out -- the usual
/// front half of a radar chain digitizing real IF samples.
class RfftPlan {
 public:
  /// `n` must be a power of two >= 4.
  explicit RfftPlan(std::size_t n);

  std::size_t size() const { return n_; }
  std::size_t bins() const { return n_ / 2 + 1; }

  /// out.size() must be bins().
  void execute(std::span<const float> in, std::span<Complex> out) const;

 private:
  std::size_t n_;
  FftPlan half_;
  std::vector<Complex> unpack_tw_;  // e^(-2*pi*i*k/n), k = 0..n/2
};

/// One-shot helpers (plan construction amortized away for tests/examples).
void fft(std::span<Complex> data);
void ifft(std::span<Complex> data);

/// Full 2D FFT of a rows x cols matrix (row-major, both powers of two):
/// FFT along rows, transpose, FFT along (former) columns, transpose back.
void fft2d(std::span<Complex> data, std::size_t rows, std::size_t cols);

}  // namespace sage::isspl
