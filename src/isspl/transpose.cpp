#include "isspl/transpose.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace sage::isspl {

namespace {

constexpr std::size_t kBlock = 32;  // elements per cache tile edge

}  // namespace

template <typename T>
void transpose(std::span<const T> in, std::span<T> out, std::size_t rows,
               std::size_t cols) {
  SAGE_CHECK(in.size() == rows * cols, "transpose: input size mismatch");
  SAGE_CHECK(out.size() == rows * cols, "transpose: output size mismatch");
  SAGE_CHECK(in.data() != out.data(), "transpose: buffers must not alias");

  for (std::size_t rb = 0; rb < rows; rb += kBlock) {
    const std::size_t rend = std::min(rb + kBlock, rows);
    for (std::size_t cb = 0; cb < cols; cb += kBlock) {
      const std::size_t cend = std::min(cb + kBlock, cols);
      for (std::size_t r = rb; r < rend; ++r) {
        for (std::size_t c = cb; c < cend; ++c) {
          out[c * rows + r] = in[r * cols + c];
        }
      }
    }
  }
}

template <typename T>
void transpose_square_inplace(std::span<T> data, std::size_t n) {
  SAGE_CHECK(data.size() == n * n, "transpose_square_inplace: size mismatch");
  for (std::size_t rb = 0; rb < n; rb += kBlock) {
    const std::size_t rend = std::min(rb + kBlock, n);
    for (std::size_t cb = rb; cb < n; cb += kBlock) {
      const std::size_t cend = std::min(cb + kBlock, n);
      for (std::size_t r = rb; r < rend; ++r) {
        const std::size_t cstart = (cb == rb) ? r + 1 : cb;
        for (std::size_t c = cstart; c < cend; ++c) {
          std::swap(data[r * n + c], data[c * n + r]);
        }
      }
    }
  }
}

template <typename T>
void pack_column_block(std::span<const T> matrix, std::size_t rows,
                       std::size_t cols, std::size_t col0, std::size_t ncols,
                       std::span<T> block) {
  SAGE_CHECK(matrix.size() == rows * cols, "pack_column_block: matrix size");
  SAGE_CHECK(col0 + ncols <= cols, "pack_column_block: column range");
  SAGE_CHECK(block.size() == rows * ncols, "pack_column_block: block size");
  for (std::size_t r = 0; r < rows; ++r) {
    const T* src = matrix.data() + r * cols + col0;
    T* dst = block.data() + r * ncols;
    std::copy(src, src + ncols, dst);
  }
}

template <typename T>
void unpack_column_block(std::span<const T> block, std::size_t rows,
                         std::size_t cols, std::size_t col0, std::size_t ncols,
                         std::span<T> matrix) {
  SAGE_CHECK(matrix.size() == rows * cols, "unpack_column_block: matrix size");
  SAGE_CHECK(col0 + ncols <= cols, "unpack_column_block: column range");
  SAGE_CHECK(block.size() == rows * ncols, "unpack_column_block: block size");
  for (std::size_t r = 0; r < rows; ++r) {
    const T* src = block.data() + r * ncols;
    T* dst = matrix.data() + r * cols + col0;
    std::copy(src, src + ncols, dst);
  }
}

template void transpose<std::complex<float>>(
    std::span<const std::complex<float>>, std::span<std::complex<float>>,
    std::size_t, std::size_t);
template void transpose<float>(std::span<const float>, std::span<float>,
                               std::size_t, std::size_t);
template void transpose<double>(std::span<const double>, std::span<double>,
                                std::size_t, std::size_t);
template void transpose<int>(std::span<const int>, std::span<int>, std::size_t,
                             std::size_t);
template void transpose_square_inplace<std::complex<float>>(
    std::span<std::complex<float>>, std::size_t);
template void transpose_square_inplace<int>(std::span<int>, std::size_t);
template void pack_column_block<std::complex<float>>(
    std::span<const std::complex<float>>, std::size_t, std::size_t,
    std::size_t, std::size_t, std::span<std::complex<float>>);
template void pack_column_block<int>(std::span<const int>, std::size_t,
                                     std::size_t, std::size_t, std::size_t,
                                     std::span<int>);
template void unpack_column_block<std::complex<float>>(
    std::span<const std::complex<float>>, std::size_t, std::size_t,
    std::size_t, std::size_t, std::span<std::complex<float>>);
template void unpack_column_block<int>(std::span<const int>, std::size_t,
                                       std::size_t, std::size_t, std::size_t,
                                       std::span<int>);

}  // namespace sage::isspl
