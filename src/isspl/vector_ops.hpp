// openSAGE -- ISSPL-style vector primitives and window functions.
//
// The shelf functions used by the example applications (range-doppler
// radar chain, image pipeline) are built from these.
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace sage::isspl {

using Complex = std::complex<float>;

/// out[i] = a[i] + b[i]
void vadd(std::span<const float> a, std::span<const float> b,
          std::span<float> out);
void vadd(std::span<const Complex> a, std::span<const Complex> b,
          std::span<Complex> out);

/// out[i] = a[i] * b[i]
void vmul(std::span<const float> a, std::span<const float> b,
          std::span<float> out);
void vmul(std::span<const Complex> a, std::span<const Complex> b,
          std::span<Complex> out);

/// x[i] *= s
void vscale(std::span<float> x, float s);
void vscale(std::span<Complex> x, float s);

/// y[i] += a * x[i]
void vaxpy(std::span<const float> x, float a, std::span<float> y);

/// out[i] = |x[i]|  (complex magnitude)
void vmag(std::span<const Complex> x, std::span<float> out);

/// out[i] = |x[i]|^2 (power; avoids the sqrt)
void vmagsq(std::span<const Complex> x, std::span<float> out);

/// Sum of elements.
float vsum(std::span<const float> x);

/// Dot product.
float vdot(std::span<const float> a, std::span<const float> b);

/// Index of the maximum element (first occurrence); x must be non-empty.
std::size_t vmax_index(std::span<const float> x);

enum class Window { kRectangular, kHann, kHamming, kBlackman };

/// Generates window coefficients of length n.
std::vector<float> make_window(Window window, std::size_t n);

/// x[i] *= w[i] (applies a real window to complex samples).
void apply_window(std::span<Complex> x, std::span<const float> w);

/// Direct-form FIR filter: out[i] = sum_k taps[k] * in[i-k]
/// (zero history before the first sample). out.size() == in.size().
void fir(std::span<const float> in, std::span<const float> taps,
         std::span<float> out);

}  // namespace sage::isspl
