#include "isspl/fft.hpp"

#include <cmath>
#include <numbers>

#include "isspl/transpose.hpp"
#include "support/error.hpp"

namespace sage::isspl {

namespace {

bool is_power_of_two(std::size_t n) { return n > 0 && (n & (n - 1)) == 0; }

bool is_power_of_four(std::size_t n) {
  if (!is_power_of_two(n)) return false;
  // Powers of four have their single set bit on an even position.
  return (n & 0x5555555555555555ull) != 0;
}

std::uint32_t reverse_bits(std::uint32_t value, int bits) {
  std::uint32_t result = 0;
  for (int i = 0; i < bits; ++i) {
    result = (result << 1) | (value & 1u);
    value >>= 1;
  }
  return result;
}

std::uint32_t reverse_digits_base4(std::uint32_t value, int digits) {
  std::uint32_t result = 0;
  for (int i = 0; i < digits; ++i) {
    result = (result << 2) | (value & 3u);
    value >>= 2;
  }
  return result;
}

}  // namespace

FftPlan::FftPlan(std::size_t n, FftDirection direction,
                 FftAlgorithm algorithm)
    : n_(n), direction_(direction), algorithm_(algorithm) {
  SAGE_CHECK(is_power_of_two(n) && n >= 2,
             "FFT size must be a power of two >= 2, got ", n);
  if (algorithm_ == FftAlgorithm::kAuto) {
    if (is_power_of_four(n)) {
      algorithm_ = FftAlgorithm::kRadix4;
    } else if (n >= 8) {
      algorithm_ = FftAlgorithm::kMixed42;
    } else {
      algorithm_ = FftAlgorithm::kRadix2;
    }
  }
  switch (algorithm_) {
    case FftAlgorithm::kRadix4:
      SAGE_CHECK(is_power_of_four(n),
                 "radix-4 FFT needs a power-of-four size, got ", n);
      build_radix4();
      break;
    case FftAlgorithm::kMixed42:
      SAGE_CHECK(n >= 8 && !is_power_of_four(n),
                 "mixed radix-4/2 FFT needs a power-of-two size >= 8 that is "
                 "not a power of four, got ", n);
      build_mixed42();
      break;
    default:
      build_radix2();
      break;
  }
}

void FftPlan::build_radix2() {
  int bits = 0;
  while ((1u << bits) < n_) ++bits;

  rev_.resize(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    rev_[i] = reverse_bits(static_cast<std::uint32_t>(i), bits);
  }

  // Twiddles for each butterfly stage, stored stage after stage:
  // stage with half-length m/2 contributes m/2 factors w^k = e^(+-2*pi*i*k/m).
  const double sign = (direction_ == FftDirection::kForward) ? -1.0 : 1.0;
  twiddles_.reserve(n_ - 1);
  for (std::size_t m = 2; m <= n_; m <<= 1) {
    const double theta = sign * 2.0 * std::numbers::pi / static_cast<double>(m);
    for (std::size_t k = 0; k < m / 2; ++k) {
      const double angle = theta * static_cast<double>(k);
      twiddles_.emplace_back(static_cast<float>(std::cos(angle)),
                             static_cast<float>(std::sin(angle)));
    }
  }
}

void FftPlan::build_radix4() {
  int digits = 0;
  while ((1u << (2 * digits)) < n_) ++digits;

  rev_.resize(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    rev_[i] = reverse_digits_base4(static_cast<std::uint32_t>(i), digits);
  }

  // Per stage (m = 4, 16, ..., n): for each j < m/4, the three factors
  // w^j, w^(2j), w^(3j) with w = e^(+-2*pi*i/m), stored consecutively.
  const double sign = (direction_ == FftDirection::kForward) ? -1.0 : 1.0;
  for (std::size_t m = 4; m <= n_; m <<= 2) {
    const double theta = sign * 2.0 * std::numbers::pi / static_cast<double>(m);
    for (std::size_t j = 0; j < m / 4; ++j) {
      for (int power = 1; power <= 3; ++power) {
        const double angle = theta * static_cast<double>(j * power);
        twiddles_.emplace_back(static_cast<float>(std::cos(angle)),
                               static_cast<float>(std::sin(angle)));
      }
    }
  }
}

void FftPlan::build_mixed42() {
  // Factorization, smallest stage first: one radix-2 seed stage on
  // adjacent pairs, then radix-4 stages m = 8, 32, ..., n. The matching
  // input permutation is the reversed mixed-radix digit order, built by
  // the DIT recursion: split into 4 interleaved subsequences, permute
  // each recursively, lay them out contiguously. (The innermost
  // length-2 split is the radix-2 seed.)
  rev_.resize(n_);
  const auto lay_out = [this](auto&& self, std::size_t out0,
                              std::size_t base_in, std::size_t stride_in,
                              std::size_t len) -> void {
    if (len == 2) {
      rev_[out0] = static_cast<std::uint32_t>(base_in);
      rev_[out0 + 1] = static_cast<std::uint32_t>(base_in + stride_in);
      return;
    }
    const std::size_t sub = len / 4;
    for (std::size_t j = 0; j < 4; ++j) {
      self(self, out0 + j * sub, base_in + j * stride_in, stride_in * 4, sub);
    }
  };
  lay_out(lay_out, 0, 0, 1, n_);

  // Unlike the pure-radix bit/digit reversals this permutation is not an
  // involution, so realize it as a precomputed swap sequence for the
  // in-place path: consecutive transpositions along each cycle of
  // out[i] = in[rev_[i]].
  perm_swaps_.clear();
  std::vector<std::uint32_t> cur(n_);  // element currently at position j
  std::vector<std::uint32_t> pos(n_);  // position of element e
  for (std::uint32_t j = 0; j < n_; ++j) cur[j] = pos[j] = j;
  for (std::uint32_t i = 0; i < n_; ++i) {
    const std::uint32_t at = pos[rev_[i]];
    if (at != i) {
      perm_swaps_.emplace_back(i, at);
      std::swap(cur[i], cur[at]);
      pos[cur[i]] = i;
      pos[cur[at]] = at;
    }
  }

  // Twiddles for the radix-4 stages, same per-stage layout as
  // build_radix4: for each j < m/4 the powers w^j, w^(2j), w^(3j).
  const double sign = (direction_ == FftDirection::kForward) ? -1.0 : 1.0;
  for (std::size_t m = 8; m <= n_; m <<= 2) {
    const double theta = sign * 2.0 * std::numbers::pi / static_cast<double>(m);
    for (std::size_t j = 0; j < m / 4; ++j) {
      for (int power = 1; power <= 3; ++power) {
        const double angle = theta * static_cast<double>(j * power);
        twiddles_.emplace_back(static_cast<float>(std::cos(angle)),
                               static_cast<float>(std::sin(angle)));
      }
    }
  }
}

void FftPlan::execute(std::span<Complex> data) const {
  SAGE_CHECK(data.size() == n_, "FFT buffer size ", data.size(),
             " does not match plan size ", n_);

  Complex* x = data.data();
  if (perm_swaps_.empty()) {
    for (std::size_t i = 0; i < n_; ++i) {
      const std::uint32_t j = rev_[i];
      if (i < j) std::swap(x[i], x[j]);
    }
  } else {
    for (const auto& [a, b] : perm_swaps_) std::swap(x[a], x[b]);
  }
  run_stages_(x);
}

void FftPlan::execute(std::span<const Complex> in,
                      std::span<Complex> out) const {
  SAGE_CHECK(in.size() == n_ && out.size() == n_,
             "FFT buffer sizes ", in.size(), "/", out.size(),
             " do not match plan size ", n_);
  const Complex* s = in.data();
  Complex* x = out.data();
  for (std::size_t i = 0; i < n_; ++i) x[i] = s[rev_[i]];
  run_stages_(x);
}

void FftPlan::run_stages_(Complex* x) const {
  if (algorithm_ == FftAlgorithm::kRadix4) {
    execute_radix4(x);
  } else if (algorithm_ == FftAlgorithm::kMixed42) {
    execute_mixed42(x);
  } else {
    execute_radix2(x);
  }

  if (direction_ == FftDirection::kInverse) {
    const float scale = 1.0f / static_cast<float>(n_);
    for (std::size_t i = 0; i < n_; ++i) x[i] *= scale;
  }
}

void FftPlan::execute_radix2(Complex* x) const {
  const Complex* stage_tw = twiddles_.data();
  const bool forward = direction_ == FftDirection::kForward;

  // Stage m == 2: the only twiddle is w^0 == 1, so the whole stage is a
  // multiply-free add/sub pass.
  if (n_ >= 2) {
    for (std::size_t base = 0; base < n_; base += 2) {
      const Complex u = x[base];
      const Complex t = x[base + 1];
      x[base] = u + t;
      x[base + 1] = u - t;
    }
    stage_tw += 1;
  }

  // Stage m == 4: twiddles are w^0 == 1 and w^1 == -+i; the latter is an
  // exact component swap, so this stage needs no multiplies either.
  if (n_ >= 4) {
    for (std::size_t base = 0; base < n_; base += 4) {
      {
        const Complex u = x[base];
        const Complex t = x[base + 2];
        x[base] = u + t;
        x[base + 2] = u - t;
      }
      {
        const Complex u = x[base + 1];
        const Complex v = x[base + 3];
        const Complex t = forward ? Complex(v.imag(), -v.real())
                                  : Complex(-v.imag(), v.real());
        x[base + 1] = u + t;
        x[base + 3] = u - t;
      }
    }
    stage_tw += 2;
  }

  for (std::size_t m = 8; m <= n_; m <<= 1) {
    const std::size_t half = m / 2;
    for (std::size_t base = 0; base < n_; base += m) {
      // k == 0 peeled: w^0 == 1 exactly.
      {
        const Complex u = x[base];
        const Complex t = x[base + half];
        x[base] = u + t;
        x[base + half] = u - t;
      }
      for (std::size_t k = 1; k < half; ++k) {
        const Complex w = stage_tw[k];
        const Complex t = w * x[base + k + half];
        const Complex u = x[base + k];
        x[base + k] = u + t;
        x[base + k + half] = u - t;
      }
    }
    stage_tw += half;
  }
}

void FftPlan::execute_radix4(Complex* x) const {
  // Forward uses W4 = -i (multiply by -i == (im, -re)); inverse uses +i.
  const bool forward = direction_ == FftDirection::kForward;
  const auto rotate = [forward](const Complex& v) {
    return forward ? Complex(v.imag(), -v.real())
                   : Complex(-v.imag(), v.real());
  };

  const Complex* stage_tw = twiddles_.data();

  // Stage m == 4: every group uses j == 0, whose three twiddles are all
  // w^0 == 1 exactly -- a multiply-free radix-4 butterfly pass.
  if (n_ >= 4) {
    for (std::size_t base = 0; base < n_; base += 4) {
      const Complex y0 = x[base];
      const Complex y1 = x[base + 1];
      const Complex y2 = x[base + 2];
      const Complex y3 = x[base + 3];

      const Complex t0 = y0 + y2;
      const Complex t1 = y0 - y2;
      const Complex t2 = y1 + y3;
      const Complex t3 = rotate(y1 - y3);

      x[base] = t0 + t2;
      x[base + 1] = t1 + t3;
      x[base + 2] = t0 - t2;
      x[base + 3] = t1 - t3;
    }
    stage_tw += 3;
  }

  radix4_stages_(x, 16, stage_tw);
}

void FftPlan::execute_mixed42(Complex* x) const {
  // Radix-2 seed stage on adjacent pairs (w^0 == 1: multiply-free), then
  // the radix-4 ladder from m == 8.
  for (std::size_t base = 0; base < n_; base += 2) {
    const Complex u = x[base];
    const Complex t = x[base + 1];
    x[base] = u + t;
    x[base + 1] = u - t;
  }
  radix4_stages_(x, 8, twiddles_.data());
}

void FftPlan::radix4_stages_(Complex* x, std::size_t m0,
                             const Complex* stage_tw) const {
  const bool forward = direction_ == FftDirection::kForward;
  const auto rotate = [forward](const Complex& v) {
    return forward ? Complex(v.imag(), -v.real())
                   : Complex(-v.imag(), v.real());
  };

  for (std::size_t m = m0; m <= n_; m <<= 2) {
    const std::size_t quarter = m / 4;
    for (std::size_t base = 0; base < n_; base += m) {
      // j == 0 peeled: all three twiddles are w^0 == 1 exactly.
      {
        const Complex y0 = x[base];
        const Complex y1 = x[base + quarter];
        const Complex y2 = x[base + 2 * quarter];
        const Complex y3 = x[base + 3 * quarter];

        const Complex t0 = y0 + y2;
        const Complex t1 = y0 - y2;
        const Complex t2 = y1 + y3;
        const Complex t3 = rotate(y1 - y3);

        x[base] = t0 + t2;
        x[base + quarter] = t1 + t3;
        x[base + 2 * quarter] = t0 - t2;
        x[base + 3 * quarter] = t1 - t3;
      }
      const Complex* tw = stage_tw + 3;
      for (std::size_t j = 1; j < quarter; ++j) {
        const Complex y0 = x[base + j];
        const Complex y1 = tw[0] * x[base + j + quarter];
        const Complex y2 = tw[1] * x[base + j + 2 * quarter];
        const Complex y3 = tw[2] * x[base + j + 3 * quarter];
        tw += 3;

        const Complex t0 = y0 + y2;
        const Complex t1 = y0 - y2;
        const Complex t2 = y1 + y3;
        const Complex t3 = rotate(y1 - y3);

        x[base + j] = t0 + t2;
        x[base + j + quarter] = t1 + t3;
        x[base + j + 2 * quarter] = t0 - t2;
        x[base + j + 3 * quarter] = t1 - t3;
      }
    }
    stage_tw += 3 * quarter;
  }
}

void FftPlan::execute_rows(std::span<Complex> data, std::size_t rows) const {
  SAGE_CHECK(data.size() == rows * n_, "row-FFT buffer size mismatch: ",
             data.size(), " != ", rows, " * ", n_);
  for (std::size_t r = 0; r < rows; ++r) {
    execute(data.subspan(r * n_, n_));
  }
}

void FftPlan::execute_rows(std::span<const Complex> in, std::span<Complex> out,
                           std::size_t rows) const {
  SAGE_CHECK(in.size() == rows * n_ && out.size() == rows * n_,
             "row-FFT buffer size mismatch: ", in.size(), "/", out.size(),
             " != ", rows, " * ", n_);
  for (std::size_t r = 0; r < rows; ++r) {
    execute(in.subspan(r * n_, n_), out.subspan(r * n_, n_));
  }
}

RfftPlan::RfftPlan(std::size_t n)
    : n_(n), half_(n / 2 < 2 ? 2 : n / 2, FftDirection::kForward) {
  SAGE_CHECK(is_power_of_two(n) && n >= 4,
             "real FFT size must be a power of two >= 4, got ", n);
  unpack_tw_.reserve(n_ / 2 + 1);
  for (std::size_t k = 0; k <= n_ / 2; ++k) {
    const double angle =
        -2.0 * std::numbers::pi * static_cast<double>(k) /
        static_cast<double>(n_);
    unpack_tw_.emplace_back(static_cast<float>(std::cos(angle)),
                            static_cast<float>(std::sin(angle)));
  }
}

void RfftPlan::execute(std::span<const float> in,
                       std::span<Complex> out) const {
  SAGE_CHECK(in.size() == n_, "real FFT input size ", in.size(),
             " does not match plan size ", n_);
  SAGE_CHECK(out.size() == bins(), "real FFT output must hold ", bins(),
             " bins, got ", out.size());

  // Pack adjacent real samples into complex pairs and transform at
  // half size.
  const std::size_t half = n_ / 2;
  std::vector<Complex> z(half);
  for (std::size_t k = 0; k < half; ++k) {
    z[k] = Complex(in[2 * k], in[2 * k + 1]);
  }
  half_.execute(z);

  // Unpack: X[k] = E[k] + w^k * O[k], where E/O are the even/odd-sample
  // spectra recovered from Z's conjugate symmetry.
  for (std::size_t k = 0; k <= half; ++k) {
    const Complex zk = z[k % half];
    const Complex zmk = std::conj(z[(half - k) % half]);
    const Complex even = 0.5f * (zk + zmk);
    const Complex diff = zk - zmk;
    // odd = -i/2 * (zk - zmk)
    const Complex odd(0.5f * diff.imag(), -0.5f * diff.real());
    out[k] = even + unpack_tw_[k] * odd;
  }
}

void fft(std::span<Complex> data) {
  FftPlan plan(data.size(), FftDirection::kForward);
  plan.execute(data);
}

void ifft(std::span<Complex> data) {
  FftPlan plan(data.size(), FftDirection::kInverse);
  plan.execute(data);
}

void fft2d(std::span<Complex> data, std::size_t rows, std::size_t cols) {
  SAGE_CHECK(data.size() == rows * cols, "fft2d buffer size mismatch");
  FftPlan row_plan(cols, FftDirection::kForward);
  row_plan.execute_rows(data, rows);

  std::vector<Complex> scratch(data.size());
  transpose(std::span<const Complex>(data.data(), data.size()),
            std::span<Complex>(scratch), rows, cols);

  FftPlan col_plan(rows, FftDirection::kForward);
  col_plan.execute_rows(std::span<Complex>(scratch), cols);

  transpose(std::span<const Complex>(scratch), data, cols, rows);
}

}  // namespace sage::isspl
