#include "isspl/fft.hpp"

#include <cmath>
#include <numbers>

#include "isspl/transpose.hpp"
#include "support/error.hpp"

namespace sage::isspl {

namespace {

bool is_power_of_two(std::size_t n) { return n > 0 && (n & (n - 1)) == 0; }

bool is_power_of_four(std::size_t n) {
  if (!is_power_of_two(n)) return false;
  // Powers of four have their single set bit on an even position.
  return (n & 0x5555555555555555ull) != 0;
}

std::uint32_t reverse_bits(std::uint32_t value, int bits) {
  std::uint32_t result = 0;
  for (int i = 0; i < bits; ++i) {
    result = (result << 1) | (value & 1u);
    value >>= 1;
  }
  return result;
}

std::uint32_t reverse_digits_base4(std::uint32_t value, int digits) {
  std::uint32_t result = 0;
  for (int i = 0; i < digits; ++i) {
    result = (result << 2) | (value & 3u);
    value >>= 2;
  }
  return result;
}

}  // namespace

FftPlan::FftPlan(std::size_t n, FftDirection direction,
                 FftAlgorithm algorithm)
    : n_(n), direction_(direction), algorithm_(algorithm) {
  SAGE_CHECK(is_power_of_two(n) && n >= 2,
             "FFT size must be a power of two >= 2, got ", n);
  if (algorithm_ == FftAlgorithm::kAuto) {
    algorithm_ = is_power_of_four(n) ? FftAlgorithm::kRadix4
                                     : FftAlgorithm::kRadix2;
  }
  if (algorithm_ == FftAlgorithm::kRadix4) {
    SAGE_CHECK(is_power_of_four(n),
               "radix-4 FFT needs a power-of-four size, got ", n);
    build_radix4();
  } else {
    build_radix2();
  }
}

void FftPlan::build_radix2() {
  int bits = 0;
  while ((1u << bits) < n_) ++bits;

  rev_.resize(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    rev_[i] = reverse_bits(static_cast<std::uint32_t>(i), bits);
  }

  // Twiddles for each butterfly stage, stored stage after stage:
  // stage with half-length m/2 contributes m/2 factors w^k = e^(+-2*pi*i*k/m).
  const double sign = (direction_ == FftDirection::kForward) ? -1.0 : 1.0;
  twiddles_.reserve(n_ - 1);
  for (std::size_t m = 2; m <= n_; m <<= 1) {
    const double theta = sign * 2.0 * std::numbers::pi / static_cast<double>(m);
    for (std::size_t k = 0; k < m / 2; ++k) {
      const double angle = theta * static_cast<double>(k);
      twiddles_.emplace_back(static_cast<float>(std::cos(angle)),
                             static_cast<float>(std::sin(angle)));
    }
  }
}

void FftPlan::build_radix4() {
  int digits = 0;
  while ((1u << (2 * digits)) < n_) ++digits;

  rev_.resize(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    rev_[i] = reverse_digits_base4(static_cast<std::uint32_t>(i), digits);
  }

  // Per stage (m = 4, 16, ..., n): for each j < m/4, the three factors
  // w^j, w^(2j), w^(3j) with w = e^(+-2*pi*i/m), stored consecutively.
  const double sign = (direction_ == FftDirection::kForward) ? -1.0 : 1.0;
  for (std::size_t m = 4; m <= n_; m <<= 2) {
    const double theta = sign * 2.0 * std::numbers::pi / static_cast<double>(m);
    for (std::size_t j = 0; j < m / 4; ++j) {
      for (int power = 1; power <= 3; ++power) {
        const double angle = theta * static_cast<double>(j * power);
        twiddles_.emplace_back(static_cast<float>(std::cos(angle)),
                               static_cast<float>(std::sin(angle)));
      }
    }
  }
}

void FftPlan::execute(std::span<Complex> data) const {
  SAGE_CHECK(data.size() == n_, "FFT buffer size ", data.size(),
             " does not match plan size ", n_);

  Complex* x = data.data();
  for (std::size_t i = 0; i < n_; ++i) {
    const std::uint32_t j = rev_[i];
    if (i < j) std::swap(x[i], x[j]);
  }

  if (algorithm_ == FftAlgorithm::kRadix4) {
    execute_radix4(x);
  } else {
    execute_radix2(x);
  }

  if (direction_ == FftDirection::kInverse) {
    const float scale = 1.0f / static_cast<float>(n_);
    for (std::size_t i = 0; i < n_; ++i) x[i] *= scale;
  }
}

void FftPlan::execute_radix2(Complex* x) const {
  const Complex* stage_tw = twiddles_.data();
  for (std::size_t m = 2; m <= n_; m <<= 1) {
    const std::size_t half = m / 2;
    for (std::size_t base = 0; base < n_; base += m) {
      for (std::size_t k = 0; k < half; ++k) {
        const Complex w = stage_tw[k];
        const Complex t = w * x[base + k + half];
        const Complex u = x[base + k];
        x[base + k] = u + t;
        x[base + k + half] = u - t;
      }
    }
    stage_tw += half;
  }
}

void FftPlan::execute_radix4(Complex* x) const {
  // Forward uses W4 = -i (multiply by -i == (im, -re)); inverse uses +i.
  const bool forward = direction_ == FftDirection::kForward;
  const auto rotate = [forward](const Complex& v) {
    return forward ? Complex(v.imag(), -v.real())
                   : Complex(-v.imag(), v.real());
  };

  const Complex* stage_tw = twiddles_.data();
  for (std::size_t m = 4; m <= n_; m <<= 2) {
    const std::size_t quarter = m / 4;
    for (std::size_t base = 0; base < n_; base += m) {
      const Complex* tw = stage_tw;
      for (std::size_t j = 0; j < quarter; ++j) {
        const Complex y0 = x[base + j];
        const Complex y1 = tw[0] * x[base + j + quarter];
        const Complex y2 = tw[1] * x[base + j + 2 * quarter];
        const Complex y3 = tw[2] * x[base + j + 3 * quarter];
        tw += 3;

        const Complex t0 = y0 + y2;
        const Complex t1 = y0 - y2;
        const Complex t2 = y1 + y3;
        const Complex t3 = rotate(y1 - y3);

        x[base + j] = t0 + t2;
        x[base + j + quarter] = t1 + t3;
        x[base + j + 2 * quarter] = t0 - t2;
        x[base + j + 3 * quarter] = t1 - t3;
      }
    }
    stage_tw += 3 * quarter;
  }
}

void FftPlan::execute_rows(std::span<Complex> data, std::size_t rows) const {
  SAGE_CHECK(data.size() == rows * n_, "row-FFT buffer size mismatch: ",
             data.size(), " != ", rows, " * ", n_);
  for (std::size_t r = 0; r < rows; ++r) {
    execute(data.subspan(r * n_, n_));
  }
}

RfftPlan::RfftPlan(std::size_t n)
    : n_(n), half_(n / 2 < 2 ? 2 : n / 2, FftDirection::kForward) {
  SAGE_CHECK(is_power_of_two(n) && n >= 4,
             "real FFT size must be a power of two >= 4, got ", n);
  unpack_tw_.reserve(n_ / 2 + 1);
  for (std::size_t k = 0; k <= n_ / 2; ++k) {
    const double angle =
        -2.0 * std::numbers::pi * static_cast<double>(k) /
        static_cast<double>(n_);
    unpack_tw_.emplace_back(static_cast<float>(std::cos(angle)),
                            static_cast<float>(std::sin(angle)));
  }
}

void RfftPlan::execute(std::span<const float> in,
                       std::span<Complex> out) const {
  SAGE_CHECK(in.size() == n_, "real FFT input size ", in.size(),
             " does not match plan size ", n_);
  SAGE_CHECK(out.size() == bins(), "real FFT output must hold ", bins(),
             " bins, got ", out.size());

  // Pack adjacent real samples into complex pairs and transform at
  // half size.
  const std::size_t half = n_ / 2;
  std::vector<Complex> z(half);
  for (std::size_t k = 0; k < half; ++k) {
    z[k] = Complex(in[2 * k], in[2 * k + 1]);
  }
  half_.execute(z);

  // Unpack: X[k] = E[k] + w^k * O[k], where E/O are the even/odd-sample
  // spectra recovered from Z's conjugate symmetry.
  for (std::size_t k = 0; k <= half; ++k) {
    const Complex zk = z[k % half];
    const Complex zmk = std::conj(z[(half - k) % half]);
    const Complex even = 0.5f * (zk + zmk);
    const Complex diff = zk - zmk;
    // odd = -i/2 * (zk - zmk)
    const Complex odd(0.5f * diff.imag(), -0.5f * diff.real());
    out[k] = even + unpack_tw_[k] * odd;
  }
}

void fft(std::span<Complex> data) {
  FftPlan plan(data.size(), FftDirection::kForward);
  plan.execute(data);
}

void ifft(std::span<Complex> data) {
  FftPlan plan(data.size(), FftDirection::kInverse);
  plan.execute(data);
}

void fft2d(std::span<Complex> data, std::size_t rows, std::size_t cols) {
  SAGE_CHECK(data.size() == rows * cols, "fft2d buffer size mismatch");
  FftPlan row_plan(cols, FftDirection::kForward);
  row_plan.execute_rows(data, rows);

  std::vector<Complex> scratch(data.size());
  transpose(std::span<const Complex>(data.data(), data.size()),
            std::span<Complex>(scratch), rows, cols);

  FftPlan col_plan(rows, FftDirection::kForward);
  col_plan.execute_rows(std::span<Complex>(scratch), cols);

  transpose(std::span<const Complex>(scratch), data, cols, rows);
}

}  // namespace sage::isspl
