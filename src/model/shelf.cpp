#include "model/shelf.hpp"

#include "model/app.hpp"
#include "model/hardware.hpp"
#include "support/error.hpp"

namespace sage::model {

void Shelf::put(std::unique_ptr<ModelObject> prototype) {
  SAGE_CHECK_AS(ModelError, prototype != nullptr, "shelf: null prototype");
  const std::string key = prototype->name();
  SAGE_CHECK_AS(ModelError, items_.find(key) == items_.end(),
                "shelf '", name_, "' already has a prototype '", key, "'");
  items_.emplace(key, std::move(prototype));
}

bool Shelf::contains(std::string_view key) const {
  return items_.find(key) != items_.end();
}

const ModelObject& Shelf::prototype(std::string_view key) const {
  auto it = items_.find(key);
  if (it == items_.end()) {
    raise<ModelError>("shelf '", name_, "' has no prototype '",
                      std::string(key), "'");
  }
  return *it->second;
}

std::vector<std::string> Shelf::keys() const {
  std::vector<std::string> out;
  out.reserve(items_.size());
  for (const auto& [key, value] : items_) out.push_back(key);
  return out;
}

ModelObject& Shelf::instantiate(std::string_view key, ModelObject& parent,
                                std::string instance_name) const {
  const ModelObject& proto = prototype(key);
  return parent.adopt(proto.clone(std::move(instance_name)));
}

namespace {

/// Builds a free-standing function prototype (not attached to an
/// application, so no name-uniqueness checks apply yet).
std::unique_ptr<ModelObject> make_function_proto(
    const std::string& name, const std::string& kernel,
    const std::vector<std::tuple<std::string, PortDirection, Striping>>&
        ports) {
  auto fn = std::make_unique<ModelObject>("function", name);
  fn->set_property("kernel", kernel);
  fn->set_property("threads", 1);
  fn->set_property("work_flops", 0.0);
  fn->set_property("role", "compute");
  for (const auto& [port_name, direction, striping] : ports) {
    ModelObject& port = fn->add_child("port", port_name);
    port.set_property("direction", to_string(direction));
    port.set_property("striping", to_string(striping));
    port.set_property("stripe_dim", 0);
    port.set_property("datatype", "cfloat");
    // Placeholder dims; instantiating designs must overwrite.
    port.set_property("dims", PropertyList{PropertyValue(0), PropertyValue(0)});
  }
  return fn;
}

}  // namespace

Shelf standard_software_shelf() {
  Shelf shelf("isspl-software");
  using PD = PortDirection;
  using St = Striping;

  auto src = make_function_proto("matrix_source", "matrix_source",
                                 {{"out", PD::kOut, St::kStriped}});
  src->set_property("role", "source");
  shelf.put(std::move(src));

  auto sink = make_function_proto("matrix_sink", "matrix_sink",
                                  {{"in", PD::kIn, St::kStriped}});
  sink->set_property("role", "sink");
  shelf.put(std::move(sink));

  shelf.put(make_function_proto("fft_rows", "isspl.fft_rows",
                                {{"in", PD::kIn, St::kStriped},
                                 {"out", PD::kOut, St::kStriped}}));
  shelf.put(make_function_proto("corner_turn", "isspl.corner_turn_local",
                                {{"in", PD::kIn, St::kStriped},
                                 {"out", PD::kOut, St::kStriped}}));
  shelf.put(make_function_proto("magnitude", "isspl.magnitude",
                                {{"in", PD::kIn, St::kStriped},
                                 {"out", PD::kOut, St::kStriped}}));
  shelf.put(make_function_proto("window_rows", "isspl.window_rows",
                                {{"in", PD::kIn, St::kStriped},
                                 {"out", PD::kOut, St::kStriped}}));
  shelf.put(make_function_proto("threshold", "isspl.threshold",
                                {{"in", PD::kIn, St::kStriped},
                                 {"out", PD::kOut, St::kStriped}}));
  shelf.put(make_function_proto("fir_rows", "isspl.fir_rows",
                                {{"in", PD::kIn, St::kStriped},
                                 {"out", PD::kOut, St::kStriped}}));
  return shelf;
}

Shelf standard_hardware_shelf() {
  Shelf shelf("cots-hardware");

  auto quad = std::make_unique<ModelObject>("board", "quad_ppc603e");
  for (int p = 0; p < 4; ++p) {
    ModelObject& cpu =
        quad->add_child("processor", "ppc603e_" + std::to_string(p));
    cpu.set_property("mhz", 200.0);
    cpu.set_property("mem_bytes", std::int64_t{64} << 20);
    cpu.set_property("cpu_scale", 1.0);
  }
  shelf.put(std::move(quad));

  auto dual = std::make_unique<ModelObject>("board", "dual_ppc750");
  for (int p = 0; p < 2; ++p) {
    ModelObject& cpu =
        dual->add_child("processor", "ppc750_" + std::to_string(p));
    cpu.set_property("mhz", 400.0);
    cpu.set_property("mem_bytes", std::int64_t{128} << 20);
    cpu.set_property("cpu_scale", 0.5);
  }
  shelf.put(std::move(dual));

  auto ws = std::make_unique<ModelObject>("board", "workstation");
  ModelObject& cpu = ws->add_child("processor", "host_cpu");
  cpu.set_property("mhz", 1000.0);
  cpu.set_property("mem_bytes", std::int64_t{1} << 30);
  cpu.set_property("cpu_scale", 1.0);
  shelf.put(std::move(ws));

  return shelf;
}

}  // namespace sage::model
