// openSAGE -- application model (the Designer's application editor).
//
// An application is a data-flow graph: function blocks (possibly nested
// in hierarchical blocks) with typed ports, connected by arcs. Port
// striping declares how the runtime distributes data over the threads of
// the host function:
//   striped    -- data is sliced evenly among the threads;
//   replicated -- every thread sees the whole data.
// All state lives in ModelObject properties so Alter sees everything.
//
// Conventions:
//   object type "application" -- the graph container
//   object type "block"       -- hierarchical grouping of functions
//   object type "function"    -- leaf behaviour; props: kernel (registry
//                                name), threads (int), work_flops (double),
//                                role ("source"|"compute"|"sink")
//   object type "port"        -- child of function; props: direction
//                                ("in"|"out"), striping ("striped"|
//                                "replicated"), stripe_dim (int), datatype
//                                (name), dims (list of int)
//   object type "arc"         -- child of application; props: src_function,
//                                src_port, dst_function, dst_port (names)
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "model/object.hpp"

namespace sage::model {

enum class PortDirection { kIn, kOut };
enum class Striping { kStriped, kReplicated };

std::string to_string(PortDirection direction);
std::string to_string(Striping striping);
PortDirection port_direction_from_string(std::string_view s);
Striping striping_from_string(std::string_view s);

/// Parsed, validated view of a port object.
struct PortView {
  const ModelObject* object = nullptr;
  PortDirection direction = PortDirection::kIn;
  Striping striping = Striping::kStriped;
  int stripe_dim = 0;
  std::string datatype;
  std::vector<std::size_t> dims;

  std::size_t total_elems() const;
  std::string function_name() const { return object->parent()->name(); }
};

/// Parsed, resolved view of an arc object.
struct ArcView {
  const ModelObject* object = nullptr;
  const ModelObject* src_function = nullptr;
  const ModelObject* src_port = nullptr;
  const ModelObject* dst_function = nullptr;
  const ModelObject* dst_port = nullptr;
};

// --- construction ------------------------------------------------------------

/// Adds an "application" child to `root`.
ModelObject& add_application(ModelObject& root, std::string name);

/// Adds a hierarchical "block" to an application or another block.
ModelObject& add_block(ModelObject& parent, std::string name);

/// Adds a function. `kernel` names a registered leaf behaviour; `threads`
/// is the function's thread count; `work_flops` is the per-iteration work
/// estimate AToT uses for load balancing.
ModelObject& add_function(ModelObject& parent, std::string name,
                          std::string kernel, int threads = 1,
                          double work_flops = 0.0);

/// Adds a port to a function.
ModelObject& add_port(ModelObject& function, std::string name,
                      PortDirection direction, Striping striping,
                      std::string datatype, std::vector<std::size_t> dims,
                      int stripe_dim = 0);

/// Connects "function.port" endpoints with an arc; endpoints must exist,
/// source must be an out-port, destination an in-port.
ModelObject& connect(ModelObject& application, std::string_view src,
                     std::string_view dst);

// --- lookup / views -----------------------------------------------------------

/// The application object that (transitively) contains `obj`.
ModelObject& enclosing_application(ModelObject& obj);

/// All functions of the application, including ones nested in blocks,
/// in stable (definition) order.
std::vector<ModelObject*> functions(const ModelObject& application);

/// Function by name anywhere in the application; throws when missing.
ModelObject& find_function(const ModelObject& application,
                           std::string_view name);

/// Port of a function by name; throws when missing.
ModelObject& find_port(const ModelObject& function, std::string_view name);

/// All arcs of the application.
std::vector<ModelObject*> arcs(const ModelObject& application);

PortView port_view(const ModelObject& port);
ArcView arc_view(const ModelObject& application, const ModelObject& arc);

/// Arcs entering / leaving a function.
std::vector<ArcView> arcs_into(const ModelObject& application,
                               const ModelObject& function);
std::vector<ArcView> arcs_out_of(const ModelObject& application,
                                 const ModelObject& function);

/// Functions in dependency order; throws sage::ModelError on a cycle.
std::vector<ModelObject*> topological_order(const ModelObject& application);

// --- data types ----------------------------------------------------------------

/// Adds a "datatypes" container populated with the built-in element types
/// (cfloat/8, float/4, int32/4, byte/1).
ModelObject& add_standard_datatypes(ModelObject& root);

/// Adds one datatype definition.
ModelObject& add_datatype(ModelObject& datatypes, std::string name,
                          std::string element, std::size_t element_bytes);

/// Element size in bytes of a named datatype; throws when unknown.
std::size_t datatype_bytes(const ModelObject& root, std::string_view name);

}  // namespace sage::model
