// openSAGE -- the model object graph.
//
// A ModelObject is a typed, named node with a property bag and owned
// children -- the shape of the DoME repository SAGE stored its designs
// in. Everything the Designer captures (application blocks, ports, arcs,
// data types, hardware, mappings) is expressed in this one structure, so
// the Alter interpreter can traverse any model uniformly.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "model/property.hpp"

namespace sage::model {

class ModelObject {
 public:
  ModelObject(std::string type, std::string name);

  ModelObject(const ModelObject&) = delete;
  ModelObject& operator=(const ModelObject&) = delete;

  std::uint64_t id() const { return id_; }
  const std::string& type() const { return type_; }
  const std::string& name() const { return name_; }
  void rename(std::string name) { name_ = std::move(name); }

  // --- properties ----------------------------------------------------------
  bool has_property(std::string_view key) const;
  /// Throws sage::ModelError when absent.
  const PropertyValue& property(std::string_view key) const;
  /// Returns `fallback` when absent.
  PropertyValue property_or(std::string_view key,
                            PropertyValue fallback) const;
  void set_property(std::string_view key, PropertyValue value);
  void remove_property(std::string_view key);
  const std::map<std::string, PropertyValue, std::less<>>& properties() const {
    return props_;
  }

  // --- hierarchy -----------------------------------------------------------
  ModelObject* parent() const { return parent_; }
  ModelObject& add_child(std::string type, std::string name);
  /// Moves an externally built subtree under this object.
  ModelObject& adopt(std::unique_ptr<ModelObject> child);
  /// Removes and destroys a direct child; throws if not found.
  void remove_child(const ModelObject& child);

  const std::vector<std::unique_ptr<ModelObject>>& children() const {
    return children_;
  }

  /// First direct child with the given name, or nullptr.
  ModelObject* find_child(std::string_view name) const;
  /// First direct child with the given type and name, or nullptr.
  ModelObject* find_child(std::string_view type, std::string_view name) const;
  /// All direct children of a type.
  std::vector<ModelObject*> children_of_type(std::string_view type) const;
  /// All descendants (depth-first, not including this) of a type.
  std::vector<ModelObject*> descendants_of_type(std::string_view type) const;

  /// Depth-first visit of this object and all descendants.
  void visit(const std::function<void(ModelObject&)>& fn);
  void visit(const std::function<void(const ModelObject&)>& fn) const;

  /// Slash-separated path from the root ("app/fft_rows/in").
  std::string path() const;

  /// Deep copy with a new identity (used by shelves to instantiate
  /// prototypes).
  std::unique_ptr<ModelObject> clone(std::string new_name) const;

  /// Indented textual dump of the subtree (debugging, golden tests).
  std::string dump(int indent = 0) const;

 private:
  static std::uint64_t next_id();

  std::uint64_t id_;
  std::string type_;
  std::string name_;
  std::map<std::string, PropertyValue, std::less<>> props_;
  ModelObject* parent_ = nullptr;
  std::vector<std::unique_ptr<ModelObject>> children_;
};

}  // namespace sage::model
