// openSAGE -- shelves: libraries of reusable design blocks.
//
// "All primitive and hierarchical blocks are stored on software and
// hardware shelves for later reuse." A shelf holds prototype subtrees
// (functions with their ports, boards with their processors); designs
// instantiate clones of them. The standard software shelf carries the
// ISSPL-backed blocks the benchmark applications use.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "model/object.hpp"

namespace sage::model {

class Shelf {
 public:
  explicit Shelf(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Registers a prototype; its name is the shelf key. Throws on
  /// duplicates.
  void put(std::unique_ptr<ModelObject> prototype);

  bool contains(std::string_view key) const;
  const ModelObject& prototype(std::string_view key) const;
  std::vector<std::string> keys() const;

  /// Clones a prototype into `parent` under a new instance name.
  ModelObject& instantiate(std::string_view key, ModelObject& parent,
                           std::string instance_name) const;

 private:
  std::string name_;
  std::map<std::string, std::unique_ptr<ModelObject>, std::less<>> items_;
};

/// The standard software shelf: ISSPL-backed function prototypes used by
/// the benchmark applications and examples. Prototypes (kernel names in
/// parentheses) include:
///   matrix_source (matrix_source), matrix_sink (matrix_sink),
///   fft_rows (isspl.fft_rows), corner_turn (isspl.corner_turn_local),
///   magnitude (isspl.magnitude), window_rows (isspl.window_rows),
///   threshold (isspl.threshold), fir_rows (isspl.fir_rows)
/// Each prototype carries placeholder dims of 0x0 which instantiating
/// designs overwrite.
Shelf standard_software_shelf();

/// The standard hardware shelf: board prototypes (quad 200 MHz PowerPC
/// 603e, dual PowerPC, workstation).
Shelf standard_hardware_shelf();

}  // namespace sage::model
