#include "model/mapping.hpp"

#include "model/hardware.hpp"
#include "support/error.hpp"

namespace sage::model {

ModelObject& add_mapping(ModelObject& root, std::string name,
                         std::string_view hardware_name) {
  SAGE_CHECK_AS(ModelError, root.find_child("mapping", name) == nullptr,
                "mapping '", name, "' already exists");
  SAGE_CHECK_AS(ModelError,
                root.find_child("hardware", hardware_name) != nullptr,
                "mapping references unknown hardware '",
                std::string(hardware_name), "'");
  ModelObject& mapping = root.add_child("mapping", std::move(name));
  mapping.set_property("hardware", std::string(hardware_name));
  return mapping;
}

ModelObject& assign(ModelObject& mapping, std::string_view function_name,
                    std::string_view processor_name) {
  SAGE_CHECK_AS(ModelError, mapping.type() == "mapping",
                "assign on non-mapping object");
  const auto count =
      mapping.children_of_type("assignment").size();
  ModelObject& a = mapping.add_child(
      "assignment",
      std::string(function_name) + "#" + std::to_string(count));
  a.set_property("function", std::string(function_name));
  a.set_property("processor", std::string(processor_name));
  return a;
}

void assign_ranks(const ModelObject& root, ModelObject& mapping,
                  std::string_view function_name,
                  const std::vector<int>& ranks) {
  const ModelObject* hw =
      root.find_child("hardware", mapping.property("hardware").as_string());
  SAGE_CHECK_AS(ModelError, hw != nullptr,
                "assign_ranks: mapping references missing hardware");
  const auto cpus = processors(*hw);
  for (int rank : ranks) {
    SAGE_CHECK_AS(ModelError,
                  rank >= 0 && rank < static_cast<int>(cpus.size()),
                  "assign_ranks: rank ", rank, " out of range");
    assign(mapping, function_name,
           cpus[static_cast<std::size_t>(rank)]->name());
  }
}

MappingView::MappingView(const ModelObject& root, const ModelObject& mapping) {
  SAGE_CHECK_AS(ModelError, mapping.type() == "mapping",
                "MappingView of non-mapping object");
  hardware_name_ = mapping.property("hardware").as_string();
  const ModelObject* hw = root.find_child("hardware", hardware_name_);
  SAGE_CHECK_AS(ModelError, hw != nullptr, "mapping '", mapping.name(),
                "' references missing hardware '", hardware_name_, "'");
  node_count_ = static_cast<int>(processors(*hw).size());

  for (const ModelObject* a : mapping.children_of_type("assignment")) {
    const std::string& fn = a->property("function").as_string();
    const std::string& cpu = a->property("processor").as_string();
    const int rank = processor_rank(*hw, cpu);
    rank_by_function_.try_emplace(fn, rank);  // first assignment wins
    assignment_order_.emplace_back(fn, rank);
  }
}

std::vector<int> MappingView::ranks_of(std::string_view function_name) const {
  std::vector<int> out;
  for (const auto& [fn, rank] : assignment_order_) {
    if (fn == function_name) out.push_back(rank);
  }
  if (out.empty()) {
    raise<ModelError>("function '", std::string(function_name),
                      "' is not mapped");
  }
  return out;
}

int MappingView::rank_of(std::string_view function_name) const {
  auto it = rank_by_function_.find(function_name);
  if (it == rank_by_function_.end()) {
    raise<ModelError>("function '", std::string(function_name),
                      "' is not mapped");
  }
  return it->second;
}

bool MappingView::is_mapped(std::string_view function_name) const {
  return rank_by_function_.find(function_name) != rank_by_function_.end();
}

std::vector<std::string> MappingView::functions_on(int rank) const {
  std::vector<std::string> out;
  for (const auto& [fn, r] : assignment_order_) {
    if (r == rank) out.push_back(fn);
  }
  return out;
}

}  // namespace sage::model
