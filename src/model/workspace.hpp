// openSAGE -- the design workspace: one root object holding the
// co-designed application, data-type, hardware, and mapping models, plus
// whole-design validation (the checks the Designer applies before
// handing a design to AToT or the glue-code generator).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "model/object.hpp"

namespace sage::model {

/// One validation finding.
struct Issue {
  enum class Severity { kWarning, kError };
  Severity severity = Severity::kError;
  std::string where;    // object path
  std::string message;

  std::string to_string() const;
};

class Workspace {
 public:
  explicit Workspace(std::string name = "project");

  /// Wraps an existing root (e.g. loaded from a repository file); the
  /// root must have type "sage-model".
  explicit Workspace(std::unique_ptr<ModelObject> root);

  ModelObject& root() { return *root_; }
  const ModelObject& root() const { return *root_; }

  /// The single application/hardware/mapping (throws when absent or
  /// ambiguous -- multi-design workspaces address children explicitly).
  ModelObject& application();
  ModelObject& hardware();
  ModelObject& mapping();
  const ModelObject& application() const;
  const ModelObject& hardware() const;
  const ModelObject& mapping() const;

  /// Full-design validation. Checks:
  ///  - every arc endpoint resolves, out->in, matching datatypes,
  ///    matching total element counts;
  ///  - every port datatype is defined;
  ///  - stripe dimensions are in range and striped dims divide evenly by
  ///    the function's thread count (warning otherwise);
  ///  - the data-flow graph is acyclic;
  ///  - every function is mapped to an existing processor;
  ///  - in-ports have exactly one producer, out-ports at least one
  ///    consumer (warning for dangling out-ports);
  ///  - sources have no in-ports, sinks no out-ports.
  std::vector<Issue> validate() const;

  /// Throws sage::ModelError listing all errors when validation fails.
  void validate_or_throw() const;

  /// Deep copy of the whole design (fresh object identities) -- the
  /// starting point for what-if edits during architecture trades.
  std::unique_ptr<Workspace> clone() const;

 private:
  std::unique_ptr<ModelObject> root_;
  ModelObject& only_child(const char* type) const;
};

}  // namespace sage::model
