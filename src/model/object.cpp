#include "model/object.hpp"

#include <atomic>
#include <sstream>

#include "support/error.hpp"

namespace sage::model {

std::uint64_t ModelObject::next_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

ModelObject::ModelObject(std::string type, std::string name)
    : id_(next_id()), type_(std::move(type)), name_(std::move(name)) {}

bool ModelObject::has_property(std::string_view key) const {
  return props_.find(key) != props_.end();
}

const PropertyValue& ModelObject::property(std::string_view key) const {
  auto it = props_.find(key);
  if (it == props_.end()) {
    raise<ModelError>("object '", path(), "' (", type_,
                      ") has no property '", std::string(key), "'");
  }
  return it->second;
}

PropertyValue ModelObject::property_or(std::string_view key,
                                       PropertyValue fallback) const {
  auto it = props_.find(key);
  return it == props_.end() ? std::move(fallback) : it->second;
}

void ModelObject::set_property(std::string_view key, PropertyValue value) {
  props_.insert_or_assign(std::string(key), std::move(value));
}

void ModelObject::remove_property(std::string_view key) {
  auto it = props_.find(key);
  if (it != props_.end()) props_.erase(it);
}

ModelObject& ModelObject::add_child(std::string type, std::string name) {
  auto child = std::make_unique<ModelObject>(std::move(type), std::move(name));
  return adopt(std::move(child));
}

ModelObject& ModelObject::adopt(std::unique_ptr<ModelObject> child) {
  SAGE_CHECK_AS(ModelError, child != nullptr, "adopt: null child");
  SAGE_CHECK_AS(ModelError, child->parent_ == nullptr,
                "adopt: child already has a parent");
  child->parent_ = this;
  children_.push_back(std::move(child));
  return *children_.back();
}

void ModelObject::remove_child(const ModelObject& child) {
  for (auto it = children_.begin(); it != children_.end(); ++it) {
    if (it->get() == &child) {
      children_.erase(it);
      return;
    }
  }
  raise<ModelError>("remove_child: '", child.name(),
                    "' is not a child of '", path(), "'");
}

ModelObject* ModelObject::find_child(std::string_view name) const {
  for (const auto& c : children_) {
    if (c->name() == name) return c.get();
  }
  return nullptr;
}

ModelObject* ModelObject::find_child(std::string_view type,
                                     std::string_view name) const {
  for (const auto& c : children_) {
    if (c->type() == type && c->name() == name) return c.get();
  }
  return nullptr;
}

std::vector<ModelObject*> ModelObject::children_of_type(
    std::string_view type) const {
  std::vector<ModelObject*> out;
  for (const auto& c : children_) {
    if (c->type() == type) out.push_back(c.get());
  }
  return out;
}

std::vector<ModelObject*> ModelObject::descendants_of_type(
    std::string_view type) const {
  std::vector<ModelObject*> out;
  for (const auto& c : children_) {
    if (c->type() == type) out.push_back(c.get());
    auto sub = c->descendants_of_type(type);
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

void ModelObject::visit(const std::function<void(ModelObject&)>& fn) {
  fn(*this);
  for (const auto& c : children_) c->visit(fn);
}

void ModelObject::visit(const std::function<void(const ModelObject&)>& fn) const {
  fn(*this);
  for (const auto& c : children_) {
    static_cast<const ModelObject&>(*c).visit(fn);
  }
}

std::string ModelObject::path() const {
  if (parent_ == nullptr) return name_;
  return parent_->path() + "/" + name_;
}

std::unique_ptr<ModelObject> ModelObject::clone(std::string new_name) const {
  auto copy = std::make_unique<ModelObject>(type_, std::move(new_name));
  copy->props_ = props_;
  for (const auto& c : children_) {
    copy->adopt(c->clone(c->name()));
  }
  return copy;
}

std::string ModelObject::dump(int indent) const {
  std::ostringstream os;
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  os << pad << type_ << " " << name_;
  if (!props_.empty()) {
    os << " {";
    bool first = true;
    for (const auto& [key, value] : props_) {
      if (!first) os << ", ";
      first = false;
      os << key << "=" << value.to_string();
    }
    os << "}";
  }
  os << "\n";
  for (const auto& c : children_) os << c->dump(indent + 1);
  return os.str();
}

}  // namespace sage::model
