#include "model/serialize.hpp"

#include <cctype>
#include <sstream>
#include <vector>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace sage::model {

namespace {

constexpr std::string_view kHeader = "# openSAGE model repository v1";

void save_object(std::ostringstream& os, const ModelObject& obj, int depth) {
  const std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
  os << pad << "object " << obj.type() << " \""
     << support::escape(obj.name()) << "\"\n";
  for (const auto& [key, value] : obj.properties()) {
    os << pad << "  prop " << key << " " << value.to_string() << "\n";
  }
  for (const auto& child : obj.children()) {
    save_object(os, *child, depth + 1);
  }
}

/// Recursive-descent parser for property literals (the to_string forms).
class LiteralParser {
 public:
  explicit LiteralParser(std::string_view text) : text_(text) {}

  PropertyValue parse() {
    PropertyValue value = parse_value();
    skip_ws();
    SAGE_CHECK_AS(ModelError, pos_ == text_.size(),
                  "trailing characters in property literal '",
                  std::string(text_), "'");
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() && text_[pos_] == ' ') ++pos_;
  }

  PropertyValue parse_value() {
    skip_ws();
    SAGE_CHECK_AS(ModelError, pos_ < text_.size(), "empty property literal");
    const char c = text_[pos_];
    if (c == '(') return parse_list();
    if (c == '"') return parse_string();
    return parse_atom();
  }

  PropertyValue parse_list() {
    ++pos_;  // '('
    PropertyList items;
    for (;;) {
      skip_ws();
      SAGE_CHECK_AS(ModelError, pos_ < text_.size(),
                    "unterminated list in property literal");
      if (text_[pos_] == ')') {
        ++pos_;
        return PropertyValue(std::move(items));
      }
      items.push_back(parse_value());
    }
  }

  PropertyValue parse_string() {
    ++pos_;  // opening quote
    std::string raw;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) {
        raw += text_[pos_];
        ++pos_;
      }
      raw += text_[pos_];
      ++pos_;
    }
    SAGE_CHECK_AS(ModelError, pos_ < text_.size(),
                  "unterminated string in property literal");
    ++pos_;  // closing quote
    return PropertyValue(support::unescape(raw));
  }

  PropertyValue parse_atom() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != ' ' && text_[pos_] != ')' &&
           text_[pos_] != '(') {
      ++pos_;
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (token == "nil") return PropertyValue();
    if (token == "true") return PropertyValue(true);
    if (token == "false") return PropertyValue(false);
    if (support::is_integer(token)) {
      return PropertyValue(
          static_cast<std::int64_t>(support::parse_int(token)));
    }
    return PropertyValue(support::parse_double(token));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string save_model(const ModelObject& root) {
  std::ostringstream os;
  os << kHeader << "\n";
  save_object(os, root, 0);
  return os.str();
}

std::unique_ptr<ModelObject> load_model(std::string_view text) {
  std::unique_ptr<ModelObject> root;
  std::vector<ModelObject*> stack;  // stack[d] = open object at depth d
  int line_number = 0;

  for (const std::string& raw_line : support::split(text, '\n')) {
    ++line_number;
    // Measure indentation before trimming.
    std::size_t indent = 0;
    while (indent < raw_line.size() && raw_line[indent] == ' ') ++indent;
    const std::string_view line = support::trim(raw_line);
    if (line.empty() || line[0] == '#') continue;
    SAGE_CHECK_AS(ModelError, indent % 2 == 0, "line ", line_number,
                  ": odd indentation");

    if (support::starts_with(line, "object ")) {
      const std::size_t depth = indent / 2;
      SAGE_CHECK_AS(ModelError, depth <= stack.size(), "line ", line_number,
                    ": object nested too deep for its parent");
      std::string_view rest = line.substr(7);
      const auto space = rest.find(' ');
      SAGE_CHECK_AS(ModelError, space != std::string_view::npos, "line ",
                    line_number, ": object needs a type and a name");
      const std::string type(rest.substr(0, space));
      std::string_view name_part = support::trim(rest.substr(space + 1));
      SAGE_CHECK_AS(ModelError,
                    name_part.size() >= 2 && name_part.front() == '"' &&
                        name_part.back() == '"',
                    "line ", line_number, ": object name must be quoted");
      const std::string name =
          support::unescape(name_part.substr(1, name_part.size() - 2));

      stack.resize(depth);
      if (depth == 0) {
        SAGE_CHECK_AS(ModelError, root == nullptr, "line ", line_number,
                      ": multiple root objects");
        root = std::make_unique<ModelObject>(type, name);
        stack.push_back(root.get());
      } else {
        SAGE_CHECK_AS(ModelError, !stack.empty() && root != nullptr, "line ",
                      line_number, ": child object before any root");
        ModelObject& child = stack.back()->add_child(type, name);
        stack.push_back(&child);
      }
    } else if (support::starts_with(line, "prop ")) {
      // A property belongs to the object opened at depth indent/2 - 1.
      const std::size_t depth = indent / 2;
      SAGE_CHECK_AS(ModelError, depth >= 1 && depth <= stack.size(), "line ",
                    line_number, ": property outside any object");
      ModelObject* owner = stack[depth - 1];
      std::string_view rest = line.substr(5);
      const auto space = rest.find(' ');
      SAGE_CHECK_AS(ModelError, space != std::string_view::npos, "line ",
                    line_number, ": prop needs a key and a value");
      const std::string key(rest.substr(0, space));
      try {
        owner->set_property(
            key, LiteralParser(support::trim(rest.substr(space + 1))).parse());
      } catch (const ModelError& e) {
        raise<ModelError>("line ", line_number, ": ", e.what());
      }
    } else {
      raise<ModelError>("line ", line_number, ": unknown directive '",
                        std::string(line.substr(0, line.find(' '))), "'");
    }
  }

  SAGE_CHECK_AS(ModelError, root != nullptr,
                "repository has no root object");
  return root;
}

std::string save_workspace(const Workspace& workspace) {
  return save_model(workspace.root());
}

std::unique_ptr<Workspace> load_workspace(std::string_view text) {
  return std::make_unique<Workspace>(load_model(text));
}

}  // namespace sage::model
