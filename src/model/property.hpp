// openSAGE -- property values.
//
// Every attribute of every model object lives in a property bag of these
// values (the DoME convention the paper's Alter language traverses).
// Values are scalars, strings, or nested lists.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace sage::model {

class PropertyValue;

using PropertyList = std::vector<PropertyValue>;

class PropertyValue {
 public:
  PropertyValue() : value_(std::monostate{}) {}
  PropertyValue(bool b) : value_(b) {}
  PropertyValue(std::int64_t i) : value_(i) {}
  PropertyValue(int i) : value_(static_cast<std::int64_t>(i)) {}
  PropertyValue(std::size_t i) : value_(static_cast<std::int64_t>(i)) {}
  PropertyValue(double d) : value_(d) {}
  PropertyValue(const char* s) : value_(std::string(s)) {}
  PropertyValue(std::string s) : value_(std::move(s)) {}
  PropertyValue(PropertyList items) : value_(std::move(items)) {}

  bool is_nil() const { return std::holds_alternative<std::monostate>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_int() const { return std::holds_alternative<std::int64_t>(value_); }
  bool is_double() const { return std::holds_alternative<double>(value_); }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_list() const { return std::holds_alternative<PropertyList>(value_); }

  /// Typed accessors; throw sage::ModelError on type mismatch.
  bool as_bool() const;
  std::int64_t as_int() const;
  double as_double() const;          // accepts int too
  const std::string& as_string() const;
  const PropertyList& as_list() const;

  bool operator==(const PropertyValue& other) const {
    return value_ == other.value_;
  }

  /// Round-trippable textual form (used by model dumps and tests).
  std::string to_string() const;

 private:
  std::variant<std::monostate, bool, std::int64_t, double, std::string,
               PropertyList>
      value_;
};

}  // namespace sage::model
