// openSAGE -- model repository persistence.
//
// The original SAGE kept designs in a DoME repository; we persist the
// object graph as an indented text format that round-trips every object,
// name, and property:
//
//   # openSAGE model repository v1
//   object sage-model "project"
//     prop created "2000-05-01"
//     object application "app"
//       object function "src"
//         prop kernel "matrix_source"
//         prop threads 4
//
// Property literals use the PropertyValue::to_string forms: nil, true,
// false, integers, reals, "strings" (escaped), and (lists ...).
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "model/object.hpp"
#include "model/workspace.hpp"

namespace sage::model {

/// Serializes an object subtree.
std::string save_model(const ModelObject& root);

/// Parses a repository file; throws sage::ModelError on malformed input.
std::unique_ptr<ModelObject> load_model(std::string_view text);

/// Serializes a workspace's root.
std::string save_workspace(const Workspace& workspace);

/// Loads a workspace (the root object must have type "sage-model").
/// Validation is the caller's choice (designs may be saved half-built).
std::unique_ptr<Workspace> load_workspace(std::string_view text);

}  // namespace sage::model
