#include "model/hardware.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace sage::model {

ModelObject& add_hardware(ModelObject& root, std::string name,
                          std::string fabric_preset) {
  SAGE_CHECK_AS(ModelError, root.find_child("hardware", name) == nullptr,
                "hardware '", name, "' already exists");
  ModelObject& hw = root.add_child("hardware", std::move(name));
  hw.set_property("fabric", std::move(fabric_preset));
  return hw;
}

ModelObject& add_chassis(ModelObject& hardware, std::string name) {
  SAGE_CHECK_AS(ModelError, hardware.type() == "hardware",
                "chassis belongs to hardware");
  return hardware.add_child("chassis", std::move(name));
}

ModelObject& add_board(ModelObject& parent, std::string name) {
  SAGE_CHECK_AS(ModelError,
                parent.type() == "hardware" || parent.type() == "chassis",
                "boards belong to hardware or chassis, not ", parent.type());
  return parent.add_child("board", std::move(name));
}

ModelObject& add_processor(ModelObject& board, std::string name, double mhz,
                           std::size_t mem_bytes, double cpu_scale) {
  SAGE_CHECK_AS(ModelError, board.type() == "board",
                "processors belong to boards");
  SAGE_CHECK_AS(ModelError, mhz > 0 && cpu_scale > 0,
                "processor '", name, "' needs positive mhz and cpu_scale");
  ModelObject& cpu = board.add_child("processor", std::move(name));
  cpu.set_property("mhz", mhz);
  cpu.set_property("mem_bytes", mem_bytes);
  cpu.set_property("cpu_scale", cpu_scale);
  return cpu;
}

ModelObject& add_link(ModelObject& hardware, std::string name, int board_a,
                      int board_b, double bandwidth_Bps, double latency_s) {
  SAGE_CHECK_AS(ModelError, hardware.type() == "hardware",
                "links belong to hardware");
  SAGE_CHECK_AS(ModelError, board_a != board_b,
                "link '", name, "' must join two different boards");
  SAGE_CHECK_AS(ModelError, bandwidth_Bps > 0 && latency_s >= 0,
                "link '", name, "' needs positive bandwidth");
  ModelObject& link = hardware.add_child("link", std::move(name));
  link.set_property("board_a", board_a);
  link.set_property("board_b", board_b);
  link.set_property("bandwidth_Bps", bandwidth_Bps);
  link.set_property("latency_s", latency_s);
  return link;
}

ModelObject& add_cspi_platform(ModelObject& root, int nodes,
                               double cpu_scale) {
  SAGE_CHECK_AS(ModelError, nodes >= 1, "need at least one processor");
  ModelObject& hw = add_hardware(root, "cspi", "cspi-myrinet-160");
  ModelObject& chassis = add_chassis(hw, "vme21");
  const int boards = (nodes + 3) / 4;
  int remaining = nodes;
  for (int b = 0; b < boards; ++b) {
    ModelObject& board = add_board(chassis, "quad_ppc_" + std::to_string(b));
    const int on_board = std::min(4, remaining);
    for (int p = 0; p < on_board; ++p) {
      // 200 MHz PowerPC 603e with 64 MB DRAM, per the paper's testbed.
      add_processor(board, "ppc603e_" + std::to_string(b * 4 + p), 200.0,
                    64ull << 20, cpu_scale);
    }
    remaining -= on_board;
  }
  return hw;
}

std::vector<ModelObject*> processors(const ModelObject& hardware) {
  std::vector<ModelObject*> out;
  for (ModelObject* board : hardware.descendants_of_type("board")) {
    for (ModelObject* cpu : board->children_of_type("processor")) {
      out.push_back(cpu);
    }
  }
  return out;
}

int processor_rank(const ModelObject& hardware, std::string_view name) {
  const auto cpus = processors(hardware);
  for (std::size_t i = 0; i < cpus.size(); ++i) {
    if (cpus[i]->name() == name) return static_cast<int>(i);
  }
  raise<ModelError>("no processor '", std::string(name), "' in hardware '",
                    hardware.name(), "'");
}

int board_of_rank(const ModelObject& hardware, int rank) {
  int index = 0;
  int board_index = 0;
  for (const ModelObject* board : hardware.descendants_of_type("board")) {
    const int count =
        static_cast<int>(board->children_of_type("processor").size());
    if (rank < index + count) return board_index;
    index += count;
    ++board_index;
  }
  raise<ModelError>("rank ", rank, " out of range for hardware '",
                    hardware.name(), "'");
}

namespace {

net::FabricModel preset_by_name(const std::string& name) {
  if (name == "cspi-myrinet-160") return net::myrinet_fabric();
  if (name == "mercury-raceway") return net::raceway_fabric();
  if (name == "sky-skychannel") return net::sky_fabric();
  if (name == "sigi") return net::sigi_fabric();
  if (name == "ideal") return net::ideal_fabric();
  raise<ModelError>("unknown fabric preset '", name, "'");
}

}  // namespace

net::FabricModel to_fabric_model(const ModelObject& hardware) {
  SAGE_CHECK_AS(ModelError, hardware.type() == "hardware",
                "to_fabric_model of non-hardware object");
  net::FabricModel m =
      preset_by_name(hardware.property("fabric").as_string());

  auto override_double = [&](const char* key, double& field) {
    if (hardware.has_property(key)) {
      field = hardware.property(key).as_double();
    }
  };
  override_double("send_overhead_s", m.send_overhead_s);
  override_double("recv_overhead_s", m.recv_overhead_s);
  override_double("intra_board_latency_s", m.intra_board_latency_s);
  override_double("inter_board_latency_s", m.inter_board_latency_s);
  override_double("intra_board_bandwidth_Bps", m.intra_board_bandwidth_Bps);
  override_double("inter_board_bandwidth_Bps", m.inter_board_bandwidth_Bps);
  override_double("vendor_bulk_overhead_factor",
                  m.vendor_bulk_overhead_factor);
  if (hardware.has_property("model_contention")) {
    m.model_contention = hardware.property("model_contention").as_bool();
  }

  for (const ModelObject* link : hardware.children_of_type("link")) {
    m.set_link(static_cast<int>(link->property("board_a").as_int()),
               static_cast<int>(link->property("board_b").as_int()),
               link->property("bandwidth_Bps").as_double(),
               link->property("latency_s").as_double());
  }

  // Node-to-board layout comes from the model itself: use the first
  // board's processor count (heterogeneous board sizes keep the preset's
  // value only if no board exists).
  const auto boards = hardware.descendants_of_type("board");
  if (!boards.empty()) {
    const int per_board =
        static_cast<int>(boards.front()->children_of_type("processor").size());
    if (per_board > 0) m.nodes_per_board = per_board;
  }
  return m;
}

double cpu_scale_of_rank(const ModelObject& hardware, int rank) {
  const auto cpus = processors(hardware);
  SAGE_CHECK_AS(ModelError,
                rank >= 0 && rank < static_cast<int>(cpus.size()),
                "rank ", rank, " out of range (", cpus.size(), " processors)");
  return cpus[static_cast<std::size_t>(rank)]
      ->property("cpu_scale")
      .as_double();
}

}  // namespace sage::model
