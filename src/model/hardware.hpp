// openSAGE -- hardware model (the Designer's hardware editor).
//
// The hardware architecture is built hierarchically, processor up to
// system, exactly as in the paper: processors sit on boards, boards in a
// chassis, joined by a fabric. The model carries the parameters the
// AToT cost model and the emulated interconnect need.
//
// Conventions:
//   object type "hardware"  -- the system container; props: fabric
//                              (preset name), plus optional overrides
//                              (send_overhead_s, intra_board_latency_s,
//                              inter_board_latency_s, *_bandwidth_Bps,
//                              vendor_bulk_overhead_factor)
//   object type "chassis"   -- optional grouping (e.g. "VME-21slot")
//   object type "board"     -- carrier card; children are processors
//   object type "processor" -- props: mhz (double), mem_bytes (int),
//                              cpu_scale (double; modeled-vs-host CPU
//                              time ratio for compute segments)
#pragma once

#include <string>
#include <vector>

#include "model/object.hpp"
#include "net/fabric_model.hpp"

namespace sage::model {

ModelObject& add_hardware(ModelObject& root, std::string name,
                          std::string fabric_preset = "cspi-myrinet-160");

ModelObject& add_chassis(ModelObject& hardware, std::string name);

/// Adds a board to the hardware (or a chassis inside it).
ModelObject& add_board(ModelObject& parent, std::string name);

/// Adds one processor; `mhz` and `mem_bytes` feed the AToT cost model,
/// `cpu_scale` feeds the virtual clock (see support/clock.hpp).
ModelObject& add_processor(ModelObject& board, std::string name, double mhz,
                           std::size_t mem_bytes, double cpu_scale = 1.0);

/// Declares a dedicated link between two boards (by board index in
/// layout order), overriding the fabric's default inter-board
/// parameters for that pair -- e.g. a slow bridge between chassis.
ModelObject& add_link(ModelObject& hardware, std::string name, int board_a,
                      int board_b, double bandwidth_Bps, double latency_s);

/// Convenience: a CSPI-like platform -- quad-PowerPC boards (the last
/// one possibly partial) in one VME chassis with a Myrinet fabric,
/// totalling exactly `nodes` processors.
ModelObject& add_cspi_platform(ModelObject& root, int nodes,
                               double cpu_scale = 1.0);

/// All processors of the system in node-rank order (board by board).
std::vector<ModelObject*> processors(const ModelObject& hardware);

/// Rank of a processor within its hardware model; throws when absent.
int processor_rank(const ModelObject& hardware, std::string_view name);

/// Board index that hosts a given node rank.
int board_of_rank(const ModelObject& hardware, int rank);

/// Builds the interconnect cost model: starts from the named preset and
/// applies any per-property overrides on the hardware object.
net::FabricModel to_fabric_model(const ModelObject& hardware);

/// The cpu_scale of a node rank (processors may differ; the emulated
/// machine uses per-node scale when executing mapped functions).
double cpu_scale_of_rank(const ModelObject& hardware, int rank);

}  // namespace sage::model
