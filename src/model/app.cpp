#include "model/app.hpp"

#include <algorithm>
#include <map>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace sage::model {

std::string to_string(PortDirection direction) {
  return direction == PortDirection::kIn ? "in" : "out";
}

std::string to_string(Striping striping) {
  return striping == Striping::kStriped ? "striped" : "replicated";
}

PortDirection port_direction_from_string(std::string_view s) {
  if (s == "in") return PortDirection::kIn;
  if (s == "out") return PortDirection::kOut;
  raise<ModelError>("unknown port direction '", std::string(s), "'");
}

Striping striping_from_string(std::string_view s) {
  if (s == "striped") return Striping::kStriped;
  if (s == "replicated") return Striping::kReplicated;
  raise<ModelError>("unknown striping '", std::string(s), "'");
}

std::size_t PortView::total_elems() const {
  std::size_t total = 1;
  for (std::size_t d : dims) total *= d;
  return total;
}

ModelObject& add_application(ModelObject& root, std::string name) {
  SAGE_CHECK_AS(ModelError, root.find_child("application", name) == nullptr,
                "application '", name, "' already exists");
  return root.add_child("application", std::move(name));
}

ModelObject& add_block(ModelObject& parent, std::string name) {
  SAGE_CHECK_AS(ModelError,
                parent.type() == "application" || parent.type() == "block",
                "blocks belong to applications or blocks, not ",
                parent.type());
  return parent.add_child("block", std::move(name));
}

ModelObject& add_function(ModelObject& parent, std::string name,
                          std::string kernel, int threads,
                          double work_flops) {
  SAGE_CHECK_AS(ModelError,
                parent.type() == "application" || parent.type() == "block",
                "functions belong to applications or blocks, not ",
                parent.type());
  SAGE_CHECK_AS(ModelError, threads >= 1, "function '", name,
                "' needs >= 1 thread, got ", threads);
  ModelObject& app = enclosing_application(parent);
  for (const ModelObject* existing : functions(app)) {
    SAGE_CHECK_AS(ModelError, existing->name() != name,
                  "function name '", name, "' is not unique in application '",
                  app.name(), "'");
  }
  ModelObject& fn = parent.add_child("function", std::move(name));
  fn.set_property("kernel", std::move(kernel));
  fn.set_property("threads", threads);
  fn.set_property("work_flops", work_flops);
  fn.set_property("role", "compute");
  return fn;
}

ModelObject& add_port(ModelObject& function, std::string name,
                      PortDirection direction, Striping striping,
                      std::string datatype, std::vector<std::size_t> dims,
                      int stripe_dim) {
  SAGE_CHECK_AS(ModelError, function.type() == "function",
                "ports belong to functions, not ", function.type());
  SAGE_CHECK_AS(ModelError, function.find_child("port", name) == nullptr,
                "port '", name, "' already exists on '", function.name(), "'");
  SAGE_CHECK_AS(ModelError, !dims.empty(), "port '", name,
                "' needs at least one dimension");
  SAGE_CHECK_AS(ModelError,
                stripe_dim >= 0 &&
                    stripe_dim < static_cast<int>(dims.size()),
                "port '", name, "': stripe_dim ", stripe_dim,
                " out of range for ", dims.size(), " dims");
  ModelObject& port = function.add_child("port", std::move(name));
  port.set_property("direction", to_string(direction));
  port.set_property("striping", to_string(striping));
  port.set_property("stripe_dim", stripe_dim);
  port.set_property("datatype", std::move(datatype));
  PropertyList dim_list;
  for (std::size_t d : dims) dim_list.emplace_back(d);
  port.set_property("dims", std::move(dim_list));
  return port;
}

namespace {

std::pair<std::string, std::string> split_endpoint(std::string_view spec) {
  const auto dot = spec.find('.');
  SAGE_CHECK_AS(ModelError, dot != std::string_view::npos,
                "endpoint '", std::string(spec),
                "' must have the form function.port");
  return {std::string(spec.substr(0, dot)), std::string(spec.substr(dot + 1))};
}

}  // namespace

ModelObject& connect(ModelObject& application, std::string_view src,
                     std::string_view dst) {
  SAGE_CHECK_AS(ModelError, application.type() == "application",
                "arcs belong to applications");
  auto [src_fn_name, src_port_name] = split_endpoint(src);
  auto [dst_fn_name, dst_port_name] = split_endpoint(dst);

  ModelObject& src_fn = find_function(application, src_fn_name);
  ModelObject& dst_fn = find_function(application, dst_fn_name);
  ModelObject& src_port = find_port(src_fn, src_port_name);
  ModelObject& dst_port = find_port(dst_fn, dst_port_name);

  SAGE_CHECK_AS(ModelError,
                src_port.property("direction").as_string() == "out",
                "arc source '", std::string(src), "' must be an out-port");
  SAGE_CHECK_AS(ModelError,
                dst_port.property("direction").as_string() == "in",
                "arc destination '", std::string(dst), "' must be an in-port");

  ModelObject& arc = application.add_child(
      "arc", std::string(src) + "->" + std::string(dst));
  arc.set_property("src_function", src_fn_name);
  arc.set_property("src_port", src_port_name);
  arc.set_property("dst_function", dst_fn_name);
  arc.set_property("dst_port", dst_port_name);
  return arc;
}

ModelObject& enclosing_application(ModelObject& obj) {
  ModelObject* cursor = &obj;
  while (cursor != nullptr && cursor->type() != "application") {
    cursor = cursor->parent();
  }
  SAGE_CHECK_AS(ModelError, cursor != nullptr,
                "object '", obj.name(), "' is not inside an application");
  return *cursor;
}

std::vector<ModelObject*> functions(const ModelObject& application) {
  return application.descendants_of_type("function");
}

ModelObject& find_function(const ModelObject& application,
                           std::string_view name) {
  for (ModelObject* fn : functions(application)) {
    if (fn->name() == name) return *fn;
  }
  raise<ModelError>("no function '", std::string(name), "' in application '",
                    application.name(), "'");
}

ModelObject& find_port(const ModelObject& function, std::string_view name) {
  ModelObject* port = function.find_child("port", name);
  if (port == nullptr) {
    raise<ModelError>("no port '", std::string(name), "' on function '",
                      function.name(), "'");
  }
  return *port;
}

std::vector<ModelObject*> arcs(const ModelObject& application) {
  return application.children_of_type("arc");
}

PortView port_view(const ModelObject& port) {
  SAGE_CHECK_AS(ModelError, port.type() == "port",
                "port_view of non-port '", port.name(), "'");
  PortView view;
  view.object = &port;
  view.direction =
      port_direction_from_string(port.property("direction").as_string());
  view.striping = striping_from_string(port.property("striping").as_string());
  view.stripe_dim = static_cast<int>(port.property("stripe_dim").as_int());
  view.datatype = port.property("datatype").as_string();
  for (const PropertyValue& d : port.property("dims").as_list()) {
    view.dims.push_back(static_cast<std::size_t>(d.as_int()));
  }
  return view;
}

ArcView arc_view(const ModelObject& application, const ModelObject& arc) {
  SAGE_CHECK_AS(ModelError, arc.type() == "arc", "arc_view of non-arc");
  ArcView view;
  view.object = &arc;
  view.src_function =
      &find_function(application, arc.property("src_function").as_string());
  view.dst_function =
      &find_function(application, arc.property("dst_function").as_string());
  view.src_port =
      &find_port(*view.src_function, arc.property("src_port").as_string());
  view.dst_port =
      &find_port(*view.dst_function, arc.property("dst_port").as_string());
  return view;
}

std::vector<ArcView> arcs_into(const ModelObject& application,
                               const ModelObject& function) {
  std::vector<ArcView> out;
  for (const ModelObject* arc : arcs(application)) {
    if (arc->property("dst_function").as_string() == function.name()) {
      out.push_back(arc_view(application, *arc));
    }
  }
  return out;
}

std::vector<ArcView> arcs_out_of(const ModelObject& application,
                                 const ModelObject& function) {
  std::vector<ArcView> out;
  for (const ModelObject* arc : arcs(application)) {
    if (arc->property("src_function").as_string() == function.name()) {
      out.push_back(arc_view(application, *arc));
    }
  }
  return out;
}

std::vector<ModelObject*> topological_order(const ModelObject& application) {
  const std::vector<ModelObject*> fns = functions(application);
  std::map<const ModelObject*, int> in_degree;
  std::map<const ModelObject*, std::vector<ModelObject*>> successors;
  for (ModelObject* fn : fns) in_degree[fn] = 0;

  for (const ModelObject* arc : arcs(application)) {
    ArcView view = arc_view(application, *arc);
    successors[view.src_function].push_back(
        const_cast<ModelObject*>(view.dst_function));
    ++in_degree[view.dst_function];
  }

  std::vector<ModelObject*> ready;
  for (ModelObject* fn : fns) {
    if (in_degree[fn] == 0) ready.push_back(fn);
  }

  std::vector<ModelObject*> order;
  order.reserve(fns.size());
  while (!ready.empty()) {
    // Stable: pick the earliest-defined ready function.
    auto it = std::min_element(
        ready.begin(), ready.end(), [&](ModelObject* a, ModelObject* b) {
          return a->id() < b->id();
        });
    ModelObject* fn = *it;
    ready.erase(it);
    order.push_back(fn);
    for (ModelObject* next : successors[fn]) {
      if (--in_degree[next] == 0) ready.push_back(next);
    }
  }

  SAGE_CHECK_AS(ModelError, order.size() == fns.size(),
                "application '", application.name(),
                "' has a data-flow cycle");
  return order;
}

ModelObject& add_standard_datatypes(ModelObject& root) {
  ModelObject* existing = root.find_child("datatypes", "datatypes");
  if (existing != nullptr) return *existing;
  ModelObject& dts = root.add_child("datatypes", "datatypes");
  add_datatype(dts, "cfloat", "complex<float>", 8);
  add_datatype(dts, "float", "float", 4);
  add_datatype(dts, "int32", "int32", 4);
  add_datatype(dts, "byte", "byte", 1);
  return dts;
}

ModelObject& add_datatype(ModelObject& datatypes, std::string name,
                          std::string element, std::size_t element_bytes) {
  SAGE_CHECK_AS(ModelError, datatypes.type() == "datatypes",
                "datatypes belong to the datatypes container");
  SAGE_CHECK_AS(ModelError,
                datatypes.find_child("datatype", name) == nullptr,
                "datatype '", name, "' already defined");
  SAGE_CHECK_AS(ModelError, element_bytes > 0, "datatype '", name,
                "' must have a positive element size");
  ModelObject& dt = datatypes.add_child("datatype", std::move(name));
  dt.set_property("element", std::move(element));
  dt.set_property("element_bytes", element_bytes);
  return dt;
}

std::size_t datatype_bytes(const ModelObject& root, std::string_view name) {
  const ModelObject* dts = root.find_child("datatypes", "datatypes");
  SAGE_CHECK_AS(ModelError, dts != nullptr,
                "model has no datatypes container");
  const ModelObject* dt = dts->find_child("datatype", name);
  if (dt == nullptr) {
    raise<ModelError>("unknown datatype '", std::string(name), "'");
  }
  return static_cast<std::size_t>(dt->property("element_bytes").as_int());
}

}  // namespace sage::model
