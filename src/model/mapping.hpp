// openSAGE -- mapping model: which processor runs each function.
//
// Produced either by hand through the Designer API or by AToT's genetic
// mapper; consumed by the glue-code generator.
//
// Conventions:
//   object type "mapping"    -- container; prop: hardware (name)
//   object type "assignment" -- props: function (name), processor (name)
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "model/object.hpp"

namespace sage::model {

ModelObject& add_mapping(ModelObject& root, std::string name,
                         std::string_view hardware_name);

/// Appends an assignment of a function to a processor. A multi-threaded
/// function may be assigned several times: thread t runs on the t-th
/// assigned processor (cycling when threads exceed assignments).
ModelObject& assign(ModelObject& mapping, std::string_view function_name,
                    std::string_view processor_name);

/// Convenience: assigns one function thread per rank in `ranks`.
void assign_ranks(const ModelObject& root, ModelObject& mapping,
                  std::string_view function_name,
                  const std::vector<int>& ranks);

/// Resolved view: function name -> node rank (via the hardware model).
class MappingView {
 public:
  MappingView(const ModelObject& root, const ModelObject& mapping);

  /// Node rank of a function's first assignment; throws when unmapped.
  int rank_of(std::string_view function_name) const;
  /// All assigned ranks in assignment order (thread t -> ranks[t % n]).
  std::vector<int> ranks_of(std::string_view function_name) const;
  bool is_mapped(std::string_view function_name) const;

  /// Functions mapped to a given rank, in assignment order.
  std::vector<std::string> functions_on(int rank) const;

  /// Number of node ranks in the hardware model.
  int node_count() const { return node_count_; }

  const std::string& hardware_name() const { return hardware_name_; }

 private:
  std::map<std::string, int, std::less<>> rank_by_function_;
  std::vector<std::pair<std::string, int>> assignment_order_;
  int node_count_ = 0;
  std::string hardware_name_;
};

}  // namespace sage::model
