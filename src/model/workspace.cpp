#include "model/workspace.hpp"

#include <sstream>

#include "model/app.hpp"
#include "model/hardware.hpp"
#include "model/mapping.hpp"
#include "support/error.hpp"

namespace sage::model {

std::string Issue::to_string() const {
  std::ostringstream os;
  os << (severity == Severity::kError ? "error" : "warning") << " @ " << where
     << ": " << message;
  return os.str();
}

Workspace::Workspace(std::string name)
    : root_(std::make_unique<ModelObject>("sage-model", std::move(name))) {
  add_standard_datatypes(*root_);
}

Workspace::Workspace(std::unique_ptr<ModelObject> root)
    : root_(std::move(root)) {
  SAGE_CHECK_AS(ModelError, root_ != nullptr, "workspace needs a root");
  SAGE_CHECK_AS(ModelError, root_->type() == "sage-model",
                "workspace root must have type 'sage-model', got '",
                root_->type(), "'");
  add_standard_datatypes(*root_);  // no-op when already present
}

std::unique_ptr<Workspace> Workspace::clone() const {
  return std::make_unique<Workspace>(root_->clone(root_->name()));
}

ModelObject& Workspace::only_child(const char* type) const {
  const auto matches = root_->children_of_type(type);
  SAGE_CHECK_AS(ModelError, matches.size() == 1, "workspace has ",
                matches.size(), " objects of type '", type,
                "' where exactly one was requested");
  return *matches.front();
}

ModelObject& Workspace::application() { return only_child("application"); }
ModelObject& Workspace::hardware() { return only_child("hardware"); }
ModelObject& Workspace::mapping() { return only_child("mapping"); }
const ModelObject& Workspace::application() const {
  return only_child("application");
}
const ModelObject& Workspace::hardware() const { return only_child("hardware"); }
const ModelObject& Workspace::mapping() const { return only_child("mapping"); }

namespace {

void check_ports_and_arcs(const ModelObject& root, const ModelObject& app,
                          std::vector<Issue>& issues) {
  auto error = [&](const ModelObject& obj, std::string message) {
    issues.push_back({Issue::Severity::kError, obj.path(), std::move(message)});
  };
  auto warning = [&](const ModelObject& obj, std::string message) {
    issues.push_back(
        {Issue::Severity::kWarning, obj.path(), std::move(message)});
  };

  // Per-port checks.
  for (const ModelObject* fn : functions(app)) {
    const int threads =
        static_cast<int>(fn->property_or("threads", 1).as_int());
    for (const ModelObject* port : fn->children_of_type("port")) {
      PortView view;
      try {
        view = port_view(*port);
      } catch (const ModelError& e) {
        error(*port, e.what());
        continue;
      }
      try {
        datatype_bytes(root, view.datatype);
      } catch (const ModelError&) {
        error(*port, "undefined datatype '" + view.datatype + "'");
      }
      for (std::size_t d : view.dims) {
        if (d == 0) error(*port, "zero-length dimension");
      }
      if (view.striping == Striping::kStriped && !view.dims.empty()) {
        const std::size_t dim =
            view.dims[static_cast<std::size_t>(view.stripe_dim)];
        if (threads > 0 && dim % static_cast<std::size_t>(threads) != 0) {
          warning(*port, "striped dimension " + std::to_string(dim) +
                             " does not divide evenly over " +
                             std::to_string(threads) + " threads");
        }
      }
    }
  }

  // Arc checks + fan-in counting.
  std::map<const ModelObject*, int> producers;  // per in-port
  std::map<const ModelObject*, int> consumers;  // per out-port
  for (const ModelObject* arc : arcs(app)) {
    ArcView view;
    try {
      view = arc_view(app, *arc);
    } catch (const ModelError& e) {
      issues.push_back({Issue::Severity::kError, arc->path(), e.what()});
      continue;
    }
    const PortView src = port_view(*view.src_port);
    const PortView dst = port_view(*view.dst_port);
    if (src.datatype != dst.datatype) {
      error(*arc, "datatype mismatch: " + src.datatype + " -> " +
                      dst.datatype);
    }
    if (src.total_elems() != dst.total_elems()) {
      error(*arc, "size mismatch: " + std::to_string(src.total_elems()) +
                      " elements -> " + std::to_string(dst.total_elems()));
    }
    ++producers[view.dst_port];
    ++consumers[view.src_port];
  }

  for (const ModelObject* fn : functions(app)) {
    const std::string role = fn->property_or("role", "compute").as_string();
    int in_ports = 0;
    int out_ports = 0;
    for (const ModelObject* port : fn->children_of_type("port")) {
      const std::string dir = port->property("direction").as_string();
      if (dir == "in") {
        ++in_ports;
        const int n = producers[port];
        if (n == 0) error(*port, "in-port has no producer arc");
        if (n > 1) {
          error(*port, "in-port has " + std::to_string(n) + " producers");
        }
      } else {
        ++out_ports;
        if (consumers[port] == 0) {
          warning(*port, "out-port has no consumer arc");
        }
      }
    }
    if (role == "source" && in_ports > 0) {
      error(*fn, "source function has in-ports");
    }
    if (role == "sink" && out_ports > 0) {
      error(*fn, "sink function has out-ports");
    }
  }

  // Cycle check.
  try {
    topological_order(app);
  } catch (const ModelError& e) {
    issues.push_back({Issue::Severity::kError, app.path(), e.what()});
  }
}

void check_mapping(const ModelObject& root, const ModelObject& app,
                   const ModelObject& mapping_obj,
                   std::vector<Issue>& issues) {
  const ModelObject* hw = root.find_child(
      "hardware", mapping_obj.property("hardware").as_string());
  if (hw == nullptr) {
    issues.push_back({Issue::Severity::kError, mapping_obj.path(),
                      "mapping references missing hardware"});
    return;
  }
  for (const ModelObject* a : mapping_obj.children_of_type("assignment")) {
    const std::string& fn_name = a->property("function").as_string();
    const std::string& cpu = a->property("processor").as_string();
    bool found_fn = true;
    try {
      find_function(app, fn_name);
    } catch (const ModelError&) {
      found_fn = false;
    }
    if (!found_fn) {
      issues.push_back({Issue::Severity::kError, a->path(),
                        "assignment of unknown function '" + fn_name + "'"});
    }
    try {
      processor_rank(*hw, cpu);
    } catch (const ModelError&) {
      issues.push_back({Issue::Severity::kError, a->path(),
                        "assignment to unknown processor '" + cpu + "'"});
    }
  }
  MappingView view(root, mapping_obj);
  for (const ModelObject* fn : functions(app)) {
    if (!view.is_mapped(fn->name())) {
      issues.push_back({Issue::Severity::kError, fn->path(),
                        "function is not mapped to any processor"});
    }
  }
}

}  // namespace

std::vector<Issue> Workspace::validate() const {
  std::vector<Issue> issues;

  const auto apps = root_->children_of_type("application");
  if (apps.empty()) {
    issues.push_back({Issue::Severity::kError, root_->path(),
                      "workspace has no application model"});
    return issues;
  }

  for (const ModelObject* app : apps) {
    check_ports_and_arcs(*root_, *app, issues);
  }

  const auto mappings = root_->children_of_type("mapping");
  for (const ModelObject* mapping_obj : mappings) {
    // A mapping applies to the single application; multi-app workspaces
    // validate mappings against the first one carrying all functions.
    check_mapping(*root_, *apps.front(), *mapping_obj, issues);
  }

  return issues;
}

void Workspace::validate_or_throw() const {
  const auto issues = validate();
  std::ostringstream os;
  int errors = 0;
  for (const Issue& issue : issues) {
    if (issue.severity == Issue::Severity::kError) {
      ++errors;
      os << "\n  " << issue.to_string();
    }
  }
  if (errors > 0) {
    raise<ModelError>("design validation failed with ", errors,
                      " error(s):", os.str());
  }
}

}  // namespace sage::model
