#include "model/property.hpp"

#include <sstream>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace sage::model {

bool PropertyValue::as_bool() const {
  if (const bool* b = std::get_if<bool>(&value_)) return *b;
  raise<ModelError>("property is not a bool: ", to_string());
}

std::int64_t PropertyValue::as_int() const {
  if (const auto* i = std::get_if<std::int64_t>(&value_)) return *i;
  raise<ModelError>("property is not an int: ", to_string());
}

double PropertyValue::as_double() const {
  if (const auto* d = std::get_if<double>(&value_)) return *d;
  if (const auto* i = std::get_if<std::int64_t>(&value_)) {
    return static_cast<double>(*i);
  }
  raise<ModelError>("property is not a number: ", to_string());
}

const std::string& PropertyValue::as_string() const {
  if (const auto* s = std::get_if<std::string>(&value_)) return *s;
  raise<ModelError>("property is not a string: ", to_string());
}

const PropertyList& PropertyValue::as_list() const {
  if (const auto* l = std::get_if<PropertyList>(&value_)) return *l;
  raise<ModelError>("property is not a list: ", to_string());
}

std::string PropertyValue::to_string() const {
  std::ostringstream os;
  if (is_nil()) {
    os << "nil";
  } else if (is_bool()) {
    os << (std::get<bool>(value_) ? "true" : "false");
  } else if (is_int()) {
    os << std::get<std::int64_t>(value_);
  } else if (is_double()) {
    os << std::get<double>(value_);
  } else if (is_string()) {
    os << '"' << support::escape(std::get<std::string>(value_)) << '"';
  } else {
    os << '(';
    const auto& items = std::get<PropertyList>(value_);
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (i) os << ' ';
      os << items[i].to_string();
    }
    os << ')';
  }
  return os.str();
}

}  // namespace sage::model
