// openSAGE -- error handling primitives.
//
// All library errors are reported as sage::Error (derived from
// std::runtime_error) carrying a formatted, human-readable message.
// SAGE_CHECK / SAGE_CHECK_MSG are used for precondition and invariant
// checking at module boundaries; internal invariants additionally use
// SAGE_ASSERT which compiles away in release-without-assert builds.
#pragma once

#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

namespace sage {

/// Base exception for all openSAGE errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Model construction / validation failure.
class ModelError : public Error {
 public:
  using Error::Error;
};

/// Alter language failure (read, eval, or builtin misuse).
class AlterError : public Error {
 public:
  using Error::Error;
};

/// Glue-configuration parse or consistency failure.
class ConfigError : public Error {
 public:
  using Error::Error;
};

/// Runtime kernel failure (striping mismatch, missing function, ...).
class RuntimeError : public Error {
 public:
  using Error::Error;
};

/// Communication substrate failure.
class CommError : public Error {
 public:
  using Error::Error;
};

namespace detail {

inline void format_parts(std::ostringstream&) {}

template <typename T, typename... Rest>
void format_parts(std::ostringstream& os, const T& first, const Rest&... rest) {
  os << first;
  format_parts(os, rest...);
}

}  // namespace detail

/// Builds a message from streamable parts, e.g. format_msg("rank ", r).
template <typename... Parts>
std::string format_msg(const Parts&... parts) {
  std::ostringstream os;
  detail::format_parts(os, parts...);
  return os.str();
}

template <typename E = Error, typename... Parts>
[[noreturn]] void raise(const Parts&... parts) {
  throw E(format_msg(parts...));
}

/// Non-throwing result carrier for construction-style APIs: either a
/// value or a human-readable error message. Lets callers (CLIs, tests,
/// validators) report config problems without exceptions as control
/// flow -- see runtime::Session::create / Engine::create.
template <typename T>
class Result {
 public:
  static Result success(T value) {
    Result r;
    r.value_.emplace(std::move(value));
    return r;
  }
  static Result failure(std::string message) {
    Result r;
    r.error_ = std::move(message);
    return r;
  }

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  /// The carried value; raises sage::Error when called on a failure.
  T& value() {
    if (!ok()) raise<Error>("Result::value() on failure: ", error_);
    return *value_;
  }
  const T& value() const {
    if (!ok()) raise<Error>("Result::value() on failure: ", error_);
    return *value_;
  }
  T take() {
    if (!ok()) raise<Error>("Result::take() on failure: ", error_);
    return std::move(*value_);
  }

  /// The error message; empty on success.
  const std::string& error() const { return error_; }

 private:
  Result() = default;

  std::optional<T> value_;
  std::string error_;
};

}  // namespace sage

#define SAGE_CHECK(cond, ...)                                              \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::sage::raise<::sage::Error>("check failed: " #cond " (", __FILE__,  \
                                   ":", __LINE__, ") " __VA_OPT__(, )      \
                                       __VA_ARGS__);                       \
    }                                                                      \
  } while (0)

#define SAGE_CHECK_AS(ErrType, cond, ...)                                  \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::sage::raise<ErrType>("check failed: " #cond " (", __FILE__, ":",   \
                             __LINE__, ") " __VA_OPT__(, ) __VA_ARGS__);   \
    }                                                                      \
  } while (0)
