#include "support/clock.hpp"

#include <ctime>

#include <chrono>

namespace sage::support {

double thread_cpu_seconds() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
#else
  return wall_seconds();
#endif
}

double wall_seconds() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point origin = clock::now();
  return std::chrono::duration<double>(clock::now() - origin).count();
}

}  // namespace sage::support
