// openSAGE -- leveled logging to stderr.
//
// Intentionally tiny: the Visualizer (sage::viz) is the structured
// observability layer; this logger only covers diagnostics and harness
// progress lines. Level is process-global and settable from the
// SAGE_LOG_LEVEL environment variable (error|warn|info|debug).
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace sage::support {

enum class LogLevel { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

LogLevel log_level();
void set_log_level(LogLevel level);

/// Emits one line ("[sage][level] message") if `level` is enabled.
void log_line(LogLevel level, const std::string& message);

namespace detail {

template <typename... Parts>
void log_parts(LogLevel level, const Parts&... parts) {
  if (level > log_level()) return;
  std::ostringstream os;
  (os << ... << parts);
  log_line(level, os.str());
}

}  // namespace detail

template <typename... Parts>
void log_error(const Parts&... parts) {
  detail::log_parts(LogLevel::kError, parts...);
}

template <typename... Parts>
void log_warn(const Parts&... parts) {
  detail::log_parts(LogLevel::kWarn, parts...);
}

template <typename... Parts>
void log_info(const Parts&... parts) {
  detail::log_parts(LogLevel::kInfo, parts...);
}

template <typename... Parts>
void log_debug(const Parts&... parts) {
  detail::log_parts(LogLevel::kDebug, parts...);
}

}  // namespace sage::support
