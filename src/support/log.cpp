#include "support/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace sage::support {

namespace {

LogLevel initial_level() {
  const char* env = std::getenv("SAGE_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  return LogLevel::kWarn;
}

std::atomic<LogLevel>& level_storage() {
  static std::atomic<LogLevel> level{initial_level()};
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "error";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kInfo: return "info";
    case LogLevel::kDebug: return "debug";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return level_storage().load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  level_storage().store(level, std::memory_order_relaxed);
}

void log_line(LogLevel level, const std::string& message) {
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  std::fprintf(stderr, "[sage][%s] %s\n", level_name(level), message.c_str());
}

}  // namespace sage::support
