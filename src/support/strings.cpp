#include "support/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

#include "support/error.hpp"

namespace sage::support {

namespace {

bool is_space(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}

}  // namespace

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && is_space(s[b])) ++b;
  while (e > b && is_space(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && is_space(s[i])) ++i;
    std::size_t start = i;
    while (i < s.size() && !is_space(s[i])) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (auto& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool is_integer(std::string_view s) {
  if (s.empty()) return false;
  std::size_t i = (s[0] == '+' || s[0] == '-') ? 1 : 0;
  if (i == s.size()) return false;
  for (; i < s.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
  }
  return true;
}

long long parse_int(std::string_view s) {
  long long value = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    raise("parse_int: malformed integer '", std::string(s), "'");
  }
  return value;
}

std::uint64_t parse_uint(std::string_view s) {
  std::uint64_t value = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    raise("parse_uint: malformed unsigned integer '", std::string(s), "'");
  }
  return value;
}

double parse_double(std::string_view s) {
  double value = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    raise("parse_double: malformed number '", std::string(s), "'");
  }
  return value;
}

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

std::string unescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      ++i;
      switch (s[i]) {
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        default: out += s[i];
      }
    } else {
      out += s[i];
    }
  }
  return out;
}

std::string format_seconds(double seconds) {
  char buf[64];
  if (seconds >= 1.0) {
    std::snprintf(buf, sizeof buf, "%.3f s", seconds);
  } else if (seconds >= 1e-3) {
    std::snprintf(buf, sizeof buf, "%.3f ms", seconds * 1e3);
  } else if (seconds >= 1e-6) {
    std::snprintf(buf, sizeof buf, "%.3f us", seconds * 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%.1f ns", seconds * 1e9);
  }
  return buf;
}

std::string format_bytes(std::size_t bytes) {
  char buf[64];
  const double b = static_cast<double>(bytes);
  if (bytes >= (1ull << 30)) {
    std::snprintf(buf, sizeof buf, "%.1f GiB", b / (1ull << 30));
  } else if (bytes >= (1ull << 20)) {
    std::snprintf(buf, sizeof buf, "%.1f MiB", b / (1ull << 20));
  } else if (bytes >= (1ull << 10)) {
    std::snprintf(buf, sizeof buf, "%.1f KiB", b / (1ull << 10));
  } else {
    std::snprintf(buf, sizeof buf, "%zu B", bytes);
  }
  return buf;
}

}  // namespace sage::support
