// openSAGE -- small string utilities shared by the Alter reader, the
// glue-config parser and report writers.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sage::support {

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Splits on a single character; keeps empty fields.
std::vector<std::string> split(std::string_view s, char sep);

/// Splits on runs of ASCII whitespace; drops empty fields.
std::vector<std::string> split_ws(std::string_view s);

/// Joins parts with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// Lower-cases ASCII characters.
std::string to_lower(std::string_view s);

/// True if `s` parses fully as a decimal integer (optional sign).
bool is_integer(std::string_view s);

/// Parses an integer, throwing sage::Error on malformed input.
long long parse_int(std::string_view s);

/// Parses an unsigned 64-bit integer, throwing sage::Error on malformed
/// input (including a leading '-'). Use for byte counts and other
/// values that must survive the full uint64 range.
std::uint64_t parse_uint(std::string_view s);

/// Parses a double, throwing sage::Error on malformed input.
double parse_double(std::string_view s);

/// Escapes for embedding in a double-quoted literal ('"', '\', newline).
std::string escape(std::string_view s);

/// Inverse of escape().
std::string unescape(std::string_view s);

/// Human-readable engineering formatting of seconds ("12.3 ms").
std::string format_seconds(double seconds);

/// Human-readable byte count ("8.0 MiB").
std::string format_bytes(std::size_t bytes);

}  // namespace sage::support
