// openSAGE -- deterministic pseudo-random numbers.
//
// Everything stochastic in the library (workload generation, the AToT
// genetic algorithm, failure injection in tests) draws from this generator
// so runs are reproducible from a single seed.
#pragma once

#include <cstdint>

namespace sage::support {

/// SplitMix64: used to expand a user seed into generator state.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** -- fast, high-quality, 64-bit PRNG.
/// Satisfies UniformRandomBitGenerator so it composes with <random>.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = kDefaultSeed) { reseed(seed); }

  static constexpr std::uint64_t kDefaultSeed = 0x5A6E2000u;  // "SAGE 2000"

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) {
    // Lemire's nearly-divisionless bounded generation.
    __uint128_t m = static_cast<__uint128_t>((*this)()) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        m = static_cast<__uint128_t>((*this)()) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t between(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace sage::support
