// openSAGE -- virtual time.
//
// The emulated multicomputer runs one thread per node on a host that may
// have fewer physical cores than emulated nodes. Wall-clock timing would
// therefore serialize and hide all scaling behaviour. Instead each node
// carries a VirtualClock:
//
//   * compute segments advance it by measured *thread CPU time*
//     (CLOCK_THREAD_CPUTIME_ID), optionally scaled to the modeled CPU;
//   * communication advances it by the fabric cost model (see sage::net);
//   * a receive joins timelines: vt = max(vt_local, vt_sender + transfer).
//
// All results reported by the benchmark harness are virtual seconds.
#pragma once

#include <cstdint>

namespace sage::support {

/// Seconds of modeled execution time.
using VirtualSeconds = double;

/// Returns this thread's consumed CPU time in seconds.
double thread_cpu_seconds();

/// Monotonic wall-clock seconds (logging / host-side measurement only).
double wall_seconds();

/// Per-node modeled clock. Not thread-safe by itself: each node thread owns
/// exactly one VirtualClock; cross-thread joins happen via message
/// timestamps (see Fabric), never by sharing the clock object.
class VirtualClock {
 public:
  VirtualClock() = default;

  /// Current modeled time in seconds since node start.
  VirtualSeconds now() const { return now_; }

  /// Advance by a modeled duration (communication, modeled waits).
  void advance(VirtualSeconds dt) {
    if (dt > 0) now_ += dt;
  }

  /// Join with a remote timeline, e.g. on message receive.
  void join(VirtualSeconds other) {
    if (other > now_) now_ = other;
  }

  void reset() { now_ = 0.0; }

 private:
  VirtualSeconds now_ = 0.0;
};

/// RAII measurement of a compute segment: on destruction adds the elapsed
/// thread CPU time, multiplied by `scale`, to the clock. `scale` > 1 models
/// a slower CPU than the host (e.g. a 200 MHz PowerPC 603e).
class ComputeScope {
 public:
  explicit ComputeScope(VirtualClock& clock, double scale = 1.0)
      : clock_(clock), scale_(scale), start_(thread_cpu_seconds()) {}

  ComputeScope(const ComputeScope&) = delete;
  ComputeScope& operator=(const ComputeScope&) = delete;

  ~ComputeScope() { stop(); }

  /// Stops measurement early; subsequent destruction is a no-op.
  void stop() {
    if (!stopped_) {
      stopped_ = true;
      clock_.advance((thread_cpu_seconds() - start_) * scale_);
    }
  }

 private:
  VirtualClock& clock_;
  double scale_;
  double start_;
  bool stopped_ = false;
};

}  // namespace sage::support
