// openSAGE -- minimpi: an MPI-like message-passing layer over the emulated
// fabric.
//
// One Communicator instance exists per (rank, communication context); the
// world communicator is created from a NodeContext. Sends are eager and
// buffered (payloads are copied into the fabric), so sendrecv-style
// exchange patterns cannot deadlock. All operations propagate virtual
// time: a blocking receive joins the receiver's clock with the message's
// modeled arrival time.
//
// Collectives follow MPI semantics: every rank of the communicator must
// call them in the same order. Implemented algorithms:
//   barrier      -- dissemination
//   bcast        -- binomial tree
//   reduce       -- binomial tree combine
//   allreduce    -- reduce + bcast
//   gather(v)/scatter -- linear to/from root
//   allgather    -- ring
//   alltoall     -- pairwise-XOR / ring-shift / vendor bulk (see alltoall.hpp)
#pragma once

#include <cstddef>
#include <cstring>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "net/machine.hpp"
#include "support/error.hpp"

namespace sage::mpi {

/// Upper bound (exclusive) for user-supplied tags; larger values are
/// reserved for collective-operation channels.
inline constexpr int kMaxUserTag = 4096;

inline constexpr int kAnySource = net::kAnySource;
inline constexpr int kAnyTag = net::kAnyTag;

/// Completion information for a receive.
struct Status {
  int source = 0;
  int tag = 0;
  std::size_t bytes = 0;
};

/// Binary reduction over raw elements; combines `count` elements of
/// `in` into `inout`.
using ReduceFn =
    std::function<void(const std::byte* in, std::byte* inout, std::size_t count)>;

class Request;

class Communicator {
 public:
  /// World communicator over all nodes of the machine.
  explicit Communicator(net::NodeContext& node);

  Communicator(const Communicator&) = delete;
  Communicator& operator=(const Communicator&) = delete;

  int rank() const { return rank_; }
  int size() const { return static_cast<int>(group_.size()); }
  net::NodeContext& node() { return node_; }

  /// Host wall-clock budget for blocking receives before they throw
  /// sage::CommError (turns emulated-network deadlocks into failures).
  void set_recv_timeout(double seconds) { recv_timeout_s_ = seconds; }
  double recv_timeout() const { return recv_timeout_s_; }

  /// Splits into sub-communicators by color (ranks with equal color join
  /// the same new communicator; key orders ranks, ties broken by old
  /// rank). Collective. Returns nullptr for color < 0 (MPI_UNDEFINED).
  std::unique_ptr<Communicator> split(int color, int key);

  // --- point to point (byte level) ---------------------------------------
  void send_bytes(std::span<const std::byte> data, int dst, int tag);
  Status recv_bytes(std::span<std::byte> data, int src, int tag);
  /// Receives into a freshly sized vector (when length is sender-defined).
  /// The bytes are copied out of the fabric's pooled buffer; use
  /// recv_payload() to keep the pooled buffer instead.
  std::vector<std::byte> recv_any_bytes(int src, int tag, Status* status = nullptr);
  /// Zero-copy receive: returns the pooled payload handle itself (the
  /// buffer goes back to the fabric's pool when the handle dies).
  net::Payload recv_payload(int src, int tag, Status* status = nullptr);
  /// Combined exchange (safe because sends are eager).
  Status sendrecv_bytes(std::span<const std::byte> send, int dst, int sendtag,
                        std::span<std::byte> recv, int src, int recvtag);

  // --- point to point (typed) ---------------------------------------------
  template <typename T>
  void send(std::span<const T> data, int dst, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(std::as_bytes(data), dst, tag);
  }

  template <typename T>
  Status recv(std::span<T> data, int src, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    return recv_bytes(std::as_writable_bytes(data), src, tag);
  }

  template <typename T>
  void send_value(const T& v, int dst, int tag) {
    send(std::span<const T>(&v, 1), dst, tag);
  }

  template <typename T>
  T recv_value(int src, int tag) {
    T v{};
    recv(std::span<T>(&v, 1), src, tag);
    return v;
  }

  // --- nonblocking ----------------------------------------------------------
  Request isend_bytes(std::span<const std::byte> data, int dst, int tag);
  Request irecv_bytes(std::span<std::byte> data, int src, int tag);

  // --- collectives (byte level) ----------------------------------------------
  void barrier();
  void bcast_bytes(std::span<std::byte> data, int root);
  void reduce_bytes(std::span<const std::byte> in, std::span<std::byte> out,
                    std::size_t elem_size, const ReduceFn& op, int root);
  void allreduce_bytes(std::span<const std::byte> in, std::span<std::byte> out,
                       std::size_t elem_size, const ReduceFn& op);
  /// Gathers equal-size blocks to root; `out` must hold size()*in.size()
  /// bytes at root and may be empty elsewhere.
  void gather_bytes(std::span<const std::byte> in, std::span<std::byte> out,
                    int root);
  void scatter_bytes(std::span<const std::byte> in, std::span<std::byte> out,
                     int root);
  void allgather_bytes(std::span<const std::byte> in, std::span<std::byte> out);
  /// Variable-size gather: rank r contributes counts[r] bytes, packed
  /// in rank order at the root. counts must agree on every rank.
  void gatherv_bytes(std::span<const std::byte> in, std::span<std::byte> out,
                     std::span<const std::size_t> counts, int root);
  /// Variable-size scatter: rank r receives counts[r] bytes.
  void scatterv_bytes(std::span<const std::byte> in, std::span<std::byte> out,
                      std::span<const std::size_t> counts, int root);

  // --- collectives (typed convenience) -----------------------------------------
  template <typename T>
  void bcast(std::span<T> data, int root) {
    bcast_bytes(std::as_writable_bytes(data), root);
  }

  template <typename T, typename Op>
  void allreduce(std::span<const T> in, std::span<T> out, Op op) {
    static_assert(std::is_trivially_copyable_v<T>);
    allreduce_bytes(std::as_bytes(in), std::as_writable_bytes(out), sizeof(T),
                    make_reduce_fn<T>(op));
  }

  template <typename T, typename Op>
  void reduce(std::span<const T> in, std::span<T> out, Op op, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    reduce_bytes(std::as_bytes(in), std::as_writable_bytes(out), sizeof(T),
                 make_reduce_fn<T>(op), root);
  }

  template <typename T>
  void gather(std::span<const T> in, std::span<T> out, int root) {
    gather_bytes(std::as_bytes(in), std::as_writable_bytes(out), root);
  }

  template <typename T>
  void scatter(std::span<const T> in, std::span<T> out, int root) {
    scatter_bytes(std::as_bytes(in), std::as_writable_bytes(out), root);
  }

  template <typename T>
  void allgather(std::span<const T> in, std::span<T> out) {
    allgather_bytes(std::as_bytes(in), std::as_writable_bytes(out));
  }

  // --- internals shared with the alltoall implementations -----------------
  /// Next per-collective sequence number (all ranks advance in lockstep
  /// because collectives are called in the same order everywhere).
  int next_collective_seq() { return collective_seq_++ & 0xFF; }
  /// Encodes a collective channel tag. `op` < 16, `seq` < 256.
  int collective_tag(int op, int seq) const {
    return kMaxUserTag + op * 256 + seq;
  }
  int world_rank_of(int comm_rank) const {
    return group_[static_cast<std::size_t>(comm_rank)];
  }
  int fabric_tag(int local_tag) const;
  void raw_send(int dst_comm_rank, int tag, std::span<const std::byte> data,
                bool vendor_bulk = false);
  /// Zero-copy variant: hands a pooled payload to the fabric by handle.
  void raw_send(int dst_comm_rank, int tag, net::Payload payload,
                bool vendor_bulk = false);
  Status raw_recv(std::span<std::byte> data, int src_comm_rank, int tag);

  template <typename T, typename Op>
  static ReduceFn make_reduce_fn(Op op) {
    return [op](const std::byte* in, std::byte* inout, std::size_t count) {
      const T* a = reinterpret_cast<const T*>(in);
      T* b = reinterpret_cast<T*>(inout);
      for (std::size_t i = 0; i < count; ++i) b[i] = op(a[i], b[i]);
    };
  }

 private:
  Communicator(net::NodeContext& node, std::vector<int> group, int rank,
               int context_id);

  int comm_rank_of_world(int world_rank) const;

  net::NodeContext& node_;
  std::vector<int> group_;  // comm rank -> world rank
  int rank_;                // my rank within this communicator
  int context_id_;
  int next_child_context_ = 1;
  int collective_seq_ = 0;
  double recv_timeout_s_ = 60.0;
};

/// Handle for a nonblocking operation. Sends complete immediately (eager
/// buffering); receives complete in wait().
class Request {
 public:
  /// Blocks until the operation completes; returns receive status
  /// (default Status for sends).
  Status wait();
  bool done() const { return done_; }

 private:
  friend class Communicator;
  Request() = default;

  Communicator* comm_ = nullptr;
  std::span<std::byte> recv_buffer_{};
  int src_ = 0;
  int tag_ = 0;
  bool is_recv_ = false;
  bool done_ = true;
  Status status_{};
};

}  // namespace sage::mpi
