// openSAGE -- all-to-all personalized exchange, the backbone of the
// distributed corner turn.
//
// The paper notes that every HPC vendor shipped its own MPI_Alltoall tuned
// to its hardware. We reproduce the mechanism with three selectable
// algorithms whose costs differ measurably under the fabric model:
//
//   kPairwise     -- log-structured pairwise exchange (XOR partners) when
//                    the node count is a power of two, otherwise falls back
//                    to the ring schedule;
//   kRing         -- (size-1)-step shifted exchange; robust, generic;
//   kVendorDirect -- posts every block through the fabric's vendor bulk
//                    path (models DMA aggregation: reduced per-message
//                    software overhead), then drains receives.
#pragma once

#include <cstddef>
#include <span>
#include <string>

#include "mpi/comm.hpp"

namespace sage::mpi {

enum class AlltoallAlgorithm { kPairwise, kRing, kVendorDirect };

std::string to_string(AlltoallAlgorithm algorithm);

/// Exchanges equal-size blocks: block r of `in` goes to rank r; block r of
/// `out` arrives from rank r. in.size() == out.size() == size()*block.
void alltoall_bytes(Communicator& comm, std::span<const std::byte> in,
                    std::span<std::byte> out, std::size_t block,
                    AlltoallAlgorithm algorithm = AlltoallAlgorithm::kPairwise);

template <typename T>
void alltoall(Communicator& comm, std::span<const T> in, std::span<T> out,
              std::size_t block_elems,
              AlltoallAlgorithm algorithm = AlltoallAlgorithm::kPairwise) {
  static_assert(std::is_trivially_copyable_v<T>);
  alltoall_bytes(comm, std::as_bytes(in), std::as_writable_bytes(out),
                 block_elems * sizeof(T), algorithm);
}

}  // namespace sage::mpi
