#include "mpi/comm.hpp"

#include <algorithm>
#include <numeric>

namespace sage::mpi {

namespace {

// Collective opcodes used in channel tags.
enum CollectiveOp {
  kOpBarrier = 0,
  kOpBcast = 1,
  kOpReduce = 2,
  kOpGather = 3,
  kOpScatter = 4,
  kOpAllgather = 5,
  kOpAlltoall = 6,
  kOpSplit = 7,
};

}  // namespace

Communicator::Communicator(net::NodeContext& node) : node_(node) {
  group_.resize(static_cast<std::size_t>(node.size()));
  std::iota(group_.begin(), group_.end(), 0);
  rank_ = node.rank();
  context_id_ = 0;
}

Communicator::Communicator(net::NodeContext& node, std::vector<int> group,
                           int rank, int context_id)
    : node_(node), group_(std::move(group)), rank_(rank),
      context_id_(context_id) {}

int Communicator::fabric_tag(int local_tag) const {
  return (context_id_ << 16) | (local_tag & 0xFFFF);
}

int Communicator::comm_rank_of_world(int world_rank) const {
  auto it = std::find(group_.begin(), group_.end(), world_rank);
  SAGE_CHECK_AS(CommError, it != group_.end(),
                "world rank ", world_rank, " not in communicator");
  return static_cast<int>(it - group_.begin());
}

void Communicator::raw_send(int dst_comm_rank, int tag,
                            std::span<const std::byte> data,
                            bool vendor_bulk) {
  raw_send(dst_comm_rank, tag, node_.fabric().pool().copy_of(data),
           vendor_bulk);
}

void Communicator::raw_send(int dst_comm_rank, int tag, net::Payload payload,
                            bool vendor_bulk) {
  SAGE_CHECK_AS(CommError, dst_comm_rank >= 0 && dst_comm_rank < size(),
                "send: bad destination rank ", dst_comm_rank);
  net::SendOptions options;
  options.vendor_bulk = vendor_bulk;
  const auto after = node_.fabric().send(
      world_rank_of(rank_), world_rank_of(dst_comm_rank), fabric_tag(tag),
      std::move(payload), node_.now(), options);
  node_.clock().join(after);
}

Status Communicator::raw_recv(std::span<std::byte> data, int src_comm_rank,
                              int tag) {
  const int world_src = (src_comm_rank == kAnySource)
                            ? net::kAnySource
                            : world_rank_of(src_comm_rank);
  const int match_tag = (tag == kAnyTag) ? net::kAnyTag : fabric_tag(tag);
  net::Message msg =
      node_.fabric().recv(world_rank_of(rank_), world_src, match_tag,
                          recv_timeout_s_);
  SAGE_CHECK_AS(CommError, msg.fault == net::FaultKind::kNone,
                "recv: got a ", net::to_string(msg.fault),
                "-faulted message on the unreliable MPI path (rank ", rank_,
                ", tag ", tag, "); the mpi layer has no recovery -- exempt "
                "this traffic from the fault plan or use the session layer");
  SAGE_CHECK_AS(CommError, msg.payload.size() <= data.size(),
                "recv: message of ", msg.payload.size(),
                " bytes overflows buffer of ", data.size(), " bytes");
  if (!msg.payload.empty()) {
    std::memcpy(data.data(), msg.payload.data(), msg.payload.size());
  }
  node_.clock().join(msg.arrival_vt);

  Status status;
  status.source = comm_rank_of_world(msg.src);
  status.tag = msg.tag & 0xFFFF;
  status.bytes = msg.payload.size();
  return status;
}

void Communicator::send_bytes(std::span<const std::byte> data, int dst,
                              int tag) {
  SAGE_CHECK_AS(CommError, tag >= 0 && tag < kMaxUserTag,
                "user tag out of range: ", tag);
  raw_send(dst, tag, data);
}

Status Communicator::recv_bytes(std::span<std::byte> data, int src, int tag) {
  SAGE_CHECK_AS(CommError, tag == kAnyTag || (tag >= 0 && tag < kMaxUserTag),
                "user tag out of range: ", tag);
  return raw_recv(data, src, tag);
}

std::vector<std::byte> Communicator::recv_any_bytes(int src, int tag,
                                                    Status* status_out) {
  const net::Payload payload = recv_payload(src, tag, status_out);
  const auto bytes = payload.bytes();
  return std::vector<std::byte>(bytes.begin(), bytes.end());
}

net::Payload Communicator::recv_payload(int src, int tag, Status* status_out) {
  const int world_src =
      (src == kAnySource) ? net::kAnySource : world_rank_of(src);
  const int match_tag = (tag == kAnyTag) ? net::kAnyTag : fabric_tag(tag);
  net::Message msg =
      node_.fabric().recv(world_rank_of(rank_), world_src, match_tag,
                          recv_timeout_s_);
  SAGE_CHECK_AS(CommError, msg.fault == net::FaultKind::kNone,
                "recv: got a ", net::to_string(msg.fault),
                "-faulted message on the unreliable MPI path (rank ", rank_,
                ", tag ", tag, "); the mpi layer has no recovery -- exempt "
                "this traffic from the fault plan or use the session layer");
  node_.clock().join(msg.arrival_vt);
  if (status_out != nullptr) {
    status_out->source = comm_rank_of_world(msg.src);
    status_out->tag = msg.tag & 0xFFFF;
    status_out->bytes = msg.payload.size();
  }
  return std::move(msg.payload);
}

Status Communicator::sendrecv_bytes(std::span<const std::byte> send, int dst,
                                    int sendtag, std::span<std::byte> recv,
                                    int src, int recvtag) {
  send_bytes(send, dst, sendtag);
  return recv_bytes(recv, src, recvtag);
}

Request Communicator::isend_bytes(std::span<const std::byte> data, int dst,
                                  int tag) {
  send_bytes(data, dst, tag);  // eager: completes immediately
  Request req;
  req.comm_ = this;
  req.done_ = true;
  return req;
}

Request Communicator::irecv_bytes(std::span<std::byte> data, int src,
                                  int tag) {
  Request req;
  req.comm_ = this;
  req.recv_buffer_ = data;
  req.src_ = src;
  req.tag_ = tag;
  req.is_recv_ = true;
  req.done_ = false;
  return req;
}

Status Request::wait() {
  if (done_) return status_;
  SAGE_CHECK_AS(CommError, comm_ != nullptr, "wait on empty request");
  if (is_recv_) {
    status_ = comm_->recv_bytes(recv_buffer_, src_, tag_);
  }
  done_ = true;
  return status_;
}

std::unique_ptr<Communicator> Communicator::split(int color, int key) {
  // Gather (color, key, rank) from everyone via allgather, then each rank
  // computes its new group locally -- the textbook implementation.
  struct Entry {
    int color;
    int key;
    int old_rank;
  };
  const Entry mine{color, key, rank_};
  std::vector<Entry> all(static_cast<std::size_t>(size()));
  allgather_bytes(std::as_bytes(std::span<const Entry>(&mine, 1)),
                  std::as_writable_bytes(std::span<Entry>(all)));

  if (color < 0) return nullptr;

  std::vector<Entry> members;
  for (const Entry& e : all) {
    if (e.color == color) members.push_back(e);
  }
  std::sort(members.begin(), members.end(), [](const Entry& a, const Entry& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.old_rank < b.old_rank;
  });

  std::vector<int> group;
  int new_rank = -1;
  group.reserve(members.size());
  for (std::size_t i = 0; i < members.size(); ++i) {
    group.push_back(world_rank_of(members[i].old_rank));
    if (members[i].old_rank == rank_) new_rank = static_cast<int>(i);
  }
  SAGE_CHECK_AS(CommError, new_rank >= 0, "split: rank not found in group");

  // Deterministic child context: all ranks of this communicator have made
  // the same number of splits, and color selects disjoint channels.
  const int child_context = context_id_ * 64 + next_child_context_ + color % 8;
  next_child_context_ += 8;
  return std::unique_ptr<Communicator>(
      new Communicator(node_, std::move(group), new_rank, child_context));
}

// --- collectives -----------------------------------------------------------

void Communicator::barrier() {
  const int seq = next_collective_seq();
  const int tag = collective_tag(kOpBarrier, seq);
  const int n = size();
  std::byte token{};
  for (int k = 1; k < n; k <<= 1) {
    const int dst = (rank_ + k) % n;
    const int src = (rank_ - k + n) % n;
    raw_send(dst, tag, std::span<const std::byte>(&token, 1));
    raw_recv(std::span<std::byte>(&token, 1), src, tag);
  }
}

void Communicator::bcast_bytes(std::span<std::byte> data, int root) {
  const int seq = next_collective_seq();
  const int tag = collective_tag(kOpBcast, seq);
  const int n = size();
  const int rel = (rank_ - root + n) % n;

  // Binomial tree over relative ranks.
  int mask = 1;
  while (mask < n) {
    if (rel & mask) {
      const int src = ((rel - mask) + root) % n;
      raw_recv(data, src, tag);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (rel + mask < n) {
      const int dst = ((rel + mask) + root) % n;
      raw_send(dst, tag, data);
    }
    mask >>= 1;
  }
}

void Communicator::reduce_bytes(std::span<const std::byte> in,
                                std::span<std::byte> out,
                                std::size_t elem_size, const ReduceFn& op,
                                int root) {
  SAGE_CHECK_AS(CommError, in.size() % elem_size == 0,
                "reduce: buffer not a whole number of elements");
  const int seq = next_collective_seq();
  const int tag = collective_tag(kOpReduce, seq);
  const int n = size();
  const int rel = (rank_ - root + n) % n;
  const std::size_t count = in.size() / elem_size;

  std::vector<std::byte> acc(in.begin(), in.end());
  std::vector<std::byte> incoming(in.size());

  // Binomial combine: children fold into parents by descending mask.
  int mask = 1;
  while (mask < n) {
    if (rel & mask) {
      const int dst = ((rel & ~mask) + root) % n;
      raw_send(dst, tag, acc);
      break;
    }
    if (rel + mask < n) {
      const int src = ((rel | mask) + root) % n;
      raw_recv(incoming, src, tag);
      op(incoming.data(), acc.data(), count);
    }
    mask <<= 1;
  }

  if (rank_ == root) {
    SAGE_CHECK_AS(CommError, out.size() == in.size(),
                  "reduce: output size mismatch at root");
    std::memcpy(out.data(), acc.data(), acc.size());
  }
}

void Communicator::allreduce_bytes(std::span<const std::byte> in,
                                   std::span<std::byte> out,
                                   std::size_t elem_size, const ReduceFn& op) {
  SAGE_CHECK_AS(CommError, out.size() == in.size(),
                "allreduce: output size mismatch");
  reduce_bytes(in, out, elem_size, op, /*root=*/0);
  bcast_bytes(out, /*root=*/0);
}

void Communicator::gather_bytes(std::span<const std::byte> in,
                                std::span<std::byte> out, int root) {
  const int seq = next_collective_seq();
  const int tag = collective_tag(kOpGather, seq);
  const int n = size();
  if (rank_ == root) {
    SAGE_CHECK_AS(CommError,
                  out.size() == in.size() * static_cast<std::size_t>(n),
                  "gather: root buffer must hold size()*block bytes");
    std::memcpy(out.data() + static_cast<std::size_t>(root) * in.size(),
                in.data(), in.size());
    for (int r = 0; r < n; ++r) {
      if (r == root) continue;
      raw_recv(out.subspan(static_cast<std::size_t>(r) * in.size(), in.size()),
               r, tag);
    }
  } else {
    raw_send(root, tag, in);
  }
}

void Communicator::scatter_bytes(std::span<const std::byte> in,
                                 std::span<std::byte> out, int root) {
  const int seq = next_collective_seq();
  const int tag = collective_tag(kOpScatter, seq);
  const int n = size();
  if (rank_ == root) {
    SAGE_CHECK_AS(CommError,
                  in.size() == out.size() * static_cast<std::size_t>(n),
                  "scatter: root buffer must hold size()*block bytes");
    for (int r = 0; r < n; ++r) {
      auto block =
          in.subspan(static_cast<std::size_t>(r) * out.size(), out.size());
      if (r == root) {
        std::memcpy(out.data(), block.data(), block.size());
      } else {
        raw_send(r, tag, block);
      }
    }
  } else {
    raw_recv(out, root, tag);
  }
}

void Communicator::gatherv_bytes(std::span<const std::byte> in,
                                 std::span<std::byte> out,
                                 std::span<const std::size_t> counts,
                                 int root) {
  const int seq = next_collective_seq();
  const int tag = collective_tag(kOpGather, seq);
  const int n = size();
  SAGE_CHECK_AS(CommError, static_cast<int>(counts.size()) == n,
                "gatherv: counts must have one entry per rank");
  SAGE_CHECK_AS(CommError,
                in.size() == counts[static_cast<std::size_t>(rank_)],
                "gatherv: contribution size does not match counts[rank]");
  if (rank_ == root) {
    std::size_t total = 0;
    for (std::size_t c : counts) total += c;
    SAGE_CHECK_AS(CommError, out.size() == total,
                  "gatherv: root buffer must hold the sum of counts");
    std::size_t offset = 0;
    for (int r = 0; r < n; ++r) {
      const std::size_t count = counts[static_cast<std::size_t>(r)];
      if (r == root) {
        std::memcpy(out.data() + offset, in.data(), count);
      } else if (count > 0) {
        raw_recv(out.subspan(offset, count), r, tag);
      }
      offset += count;
    }
  } else if (!in.empty()) {
    raw_send(root, tag, in);
  }
  // Ranks with a zero count send nothing; the root skips them.
}

void Communicator::scatterv_bytes(std::span<const std::byte> in,
                                  std::span<std::byte> out,
                                  std::span<const std::size_t> counts,
                                  int root) {
  const int seq = next_collective_seq();
  const int tag = collective_tag(kOpScatter, seq);
  const int n = size();
  SAGE_CHECK_AS(CommError, static_cast<int>(counts.size()) == n,
                "scatterv: counts must have one entry per rank");
  SAGE_CHECK_AS(CommError,
                out.size() == counts[static_cast<std::size_t>(rank_)],
                "scatterv: receive size does not match counts[rank]");
  if (rank_ == root) {
    std::size_t total = 0;
    for (std::size_t c : counts) total += c;
    SAGE_CHECK_AS(CommError, in.size() == total,
                  "scatterv: root buffer must hold the sum of counts");
    std::size_t offset = 0;
    for (int r = 0; r < n; ++r) {
      const std::size_t count = counts[static_cast<std::size_t>(r)];
      if (r == root) {
        std::memcpy(out.data(), in.data() + offset, count);
      } else if (count > 0) {
        raw_send(r, tag, in.subspan(offset, count));
      }
      offset += count;
    }
  } else if (!out.empty()) {
    raw_recv(out, root, tag);
  }
}

void Communicator::allgather_bytes(std::span<const std::byte> in,
                                   std::span<std::byte> out) {
  const int seq = next_collective_seq();
  const int tag = collective_tag(kOpAllgather, seq);
  const int n = size();
  const std::size_t block = in.size();
  SAGE_CHECK_AS(CommError, out.size() == block * static_cast<std::size_t>(n),
                "allgather: output must hold size()*block bytes");

  std::memcpy(out.data() + static_cast<std::size_t>(rank_) * block, in.data(),
              block);
  // Ring: at step s, forward the block that originated at rank-s.
  const int next = (rank_ + 1) % n;
  const int prev = (rank_ - 1 + n) % n;
  for (int s = 0; s < n - 1; ++s) {
    const int send_origin = (rank_ - s + n) % n;
    const int recv_origin = (rank_ - s - 1 + n) % n;
    raw_send(next, tag,
             out.subspan(static_cast<std::size_t>(send_origin) * block, block));
    raw_recv(out.subspan(static_cast<std::size_t>(recv_origin) * block, block),
             prev, tag);
  }
}

}  // namespace sage::mpi
