#include "mpi/alltoall.hpp"

#include <cstring>

namespace sage::mpi {

namespace {

constexpr int kOpAlltoall = 6;

bool is_power_of_two(int n) { return n > 0 && (n & (n - 1)) == 0; }

void copy_own_block(std::span<const std::byte> in, std::span<std::byte> out,
                    std::size_t block, int rank) {
  std::memcpy(out.data() + static_cast<std::size_t>(rank) * block,
              in.data() + static_cast<std::size_t>(rank) * block, block);
}

/// Pooled scatter side of the exchange: one copy into the fabric pool on
/// the send side (raw_send), and here one scatter straight from the
/// pooled block into the caller's block slot -- the handle returns the
/// buffer to the pool as it dies.
void gather_block(Communicator& comm, std::span<std::byte> out,
                  std::size_t block, int src, int tag) {
  const net::Payload payload = comm.recv_payload(src, tag);
  SAGE_CHECK_AS(CommError, payload.size() == block,
                "alltoall: expected a block of ", block, " bytes from rank ",
                src, ", got ", payload.size());
  if (block == 0) return;
  std::memcpy(out.data() + static_cast<std::size_t>(src) * block,
              payload.data(), block);
}

void alltoall_ring(Communicator& comm, std::span<const std::byte> in,
                   std::span<std::byte> out, std::size_t block, int tag) {
  const int n = comm.size();
  const int rank = comm.rank();
  copy_own_block(in, out, block, rank);
  for (int step = 1; step < n; ++step) {
    const int dst = (rank + step) % n;
    const int src = (rank - step + n) % n;
    comm.raw_send(dst, tag,
                  in.subspan(static_cast<std::size_t>(dst) * block, block));
    gather_block(comm, out, block, src, tag);
  }
}

void alltoall_pairwise(Communicator& comm, std::span<const std::byte> in,
                       std::span<std::byte> out, std::size_t block, int tag) {
  const int n = comm.size();
  const int rank = comm.rank();
  copy_own_block(in, out, block, rank);
  for (int step = 1; step < n; ++step) {
    const int partner = rank ^ step;
    comm.raw_send(partner, tag,
                  in.subspan(static_cast<std::size_t>(partner) * block, block));
    gather_block(comm, out, block, partner, tag);
  }
}

void alltoall_vendor(Communicator& comm, std::span<const std::byte> in,
                     std::span<std::byte> out, std::size_t block, int tag) {
  const int n = comm.size();
  const int rank = comm.rank();
  copy_own_block(in, out, block, rank);
  // Vendor bulk path: all sends are posted up front through the
  // DMA-aggregated channel, then receives are drained in arrival order.
  for (int step = 1; step < n; ++step) {
    const int dst = (rank + step) % n;
    comm.raw_send(dst, tag,
                  in.subspan(static_cast<std::size_t>(dst) * block, block),
                  /*vendor_bulk=*/true);
  }
  for (int step = 1; step < n; ++step) {
    const int src = (rank - step + n) % n;
    gather_block(comm, out, block, src, tag);
  }
}

}  // namespace

std::string to_string(AlltoallAlgorithm algorithm) {
  switch (algorithm) {
    case AlltoallAlgorithm::kPairwise: return "pairwise";
    case AlltoallAlgorithm::kRing: return "ring";
    case AlltoallAlgorithm::kVendorDirect: return "vendor-direct";
  }
  return "?";
}

void alltoall_bytes(Communicator& comm, std::span<const std::byte> in,
                    std::span<std::byte> out, std::size_t block,
                    AlltoallAlgorithm algorithm) {
  const auto n = static_cast<std::size_t>(comm.size());
  SAGE_CHECK_AS(CommError, in.size() == n * block,
                "alltoall: input must hold size()*block bytes, got ",
                in.size(), " want ", n * block);
  SAGE_CHECK_AS(CommError, out.size() == n * block,
                "alltoall: output must hold size()*block bytes, got ",
                out.size(), " want ", n * block);

  const int seq = comm.next_collective_seq();
  const int tag = comm.collective_tag(kOpAlltoall, seq);

  switch (algorithm) {
    case AlltoallAlgorithm::kPairwise:
      if (is_power_of_two(comm.size())) {
        alltoall_pairwise(comm, in, out, block, tag);
      } else {
        alltoall_ring(comm, in, out, block, tag);
      }
      break;
    case AlltoallAlgorithm::kRing:
      alltoall_ring(comm, in, out, block, tag);
      break;
    case AlltoallAlgorithm::kVendorDirect:
      alltoall_vendor(comm, in, out, block, tag);
      break;
  }
}

}  // namespace sage::mpi
