#include "atot/scheduler.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "support/error.hpp"

namespace sage::atot {

ScheduleResult list_schedule(const MappingProblem& problem,
                             const Assignment& assignment) {
  SAGE_CHECK(static_cast<int>(assignment.size()) == problem.task_count(),
             "assignment size mismatch");
  const int n = problem.task_count();

  // Dependencies: traffic edges (task ids are topologically ordered by
  // construction in build_problem).
  std::vector<std::vector<const Traffic*>> incoming(
      static_cast<std::size_t>(n));
  for (const Traffic& edge : problem.traffic) {
    incoming[static_cast<std::size_t>(edge.dst_task)].push_back(&edge);
  }

  std::vector<double> proc_free(
      static_cast<std::size_t>(problem.proc_count()), 0.0);
  // One serialized channel per (board, board) pair models bus scheduling.
  std::map<std::pair<int, int>, double> link_free;
  auto board_of = [&](int proc) {
    return proc / problem.fabric.nodes_per_board;
  };

  ScheduleResult result;
  result.timeline.resize(static_cast<std::size_t>(n));
  result.proc_busy.assign(static_cast<std::size_t>(problem.proc_count()),
                          0.0);

  // Task ids are already topologically ordered.
  for (int t = 0; t < n; ++t) {
    const int p = assignment[static_cast<std::size_t>(t)];
    double ready = 0.0;
    for (const Traffic* edge : incoming[static_cast<std::size_t>(t)]) {
      const int sp = assignment[static_cast<std::size_t>(edge->src_task)];
      const double src_finish =
          result.timeline[static_cast<std::size_t>(edge->src_task)].finish;
      double arrival = src_finish;
      if (sp != p) {
        const double cost = problem.comm_seconds(*edge, sp, p);
        auto key = std::minmax(board_of(sp), board_of(p));
        double& link = link_free[{key.first, key.second}];
        const double start = std::max(src_finish, link);
        link = start + cost;
        arrival = start + cost;
      }
      ready = std::max(ready, arrival);
    }

    ScheduledTask& slot = result.timeline[static_cast<std::size_t>(t)];
    slot.task = t;
    slot.proc = p;
    slot.start = std::max(ready, proc_free[static_cast<std::size_t>(p)]);
    slot.finish = slot.start + problem.compute_seconds(t, p);
    proc_free[static_cast<std::size_t>(p)] = slot.finish;
    result.proc_busy[static_cast<std::size_t>(p)] +=
        slot.finish - slot.start;
    result.makespan = std::max(result.makespan, slot.finish);
  }

  double source_start = result.makespan;
  double sink_finish = 0.0;
  bool any_source = false;
  bool any_sink = false;
  for (int t = 0; t < n; ++t) {
    const Task& task = problem.tasks[static_cast<std::size_t>(t)];
    const ScheduledTask& slot = result.timeline[static_cast<std::size_t>(t)];
    if (task.is_source) {
      source_start = std::min(source_start, slot.start);
      any_source = true;
    }
    if (task.is_sink) {
      sink_finish = std::max(sink_finish, slot.finish);
      any_sink = true;
    }
  }
  result.latency = (any_source && any_sink) ? sink_finish - source_start
                                            : result.makespan;
  return result;
}

double latency_margin(const MappingProblem& problem,
                      const Assignment& assignment, double latency_bound) {
  return latency_bound - list_schedule(problem, assignment).latency;
}

std::string ScheduleResult::to_string(const MappingProblem& problem) const {
  std::ostringstream os;
  os << "schedule: makespan " << makespan << "s, latency " << latency
     << "s\n";
  for (const ScheduledTask& slot : timeline) {
    const Task& task = problem.tasks[static_cast<std::size_t>(slot.task)];
    os << "  " << task.function << "[" << task.thread << "] on proc "
       << slot.proc << ": " << slot.start << " .. " << slot.finish << "\n";
  }
  return os.str();
}

}  // namespace sage::atot
