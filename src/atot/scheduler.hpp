// openSAGE -- AToT list scheduler.
//
// Given an assignment, builds a static timeline: tasks start when their
// processor is free and all producer traffic has arrived; each fabric
// link (board pair) serializes its transfers. Used for the trades
// reports ("optimizing over latency constraints ... scheduling of CPUs
// and busses") and to estimate a design's latency before anything runs.
#pragma once

#include <string>
#include <vector>

#include "atot/cost_model.hpp"

namespace sage::atot {

struct ScheduledTask {
  int task = -1;
  int proc = -1;
  double start = 0.0;
  double finish = 0.0;
};

struct ScheduleResult {
  std::vector<ScheduledTask> timeline;  // one entry per task, task order
  double makespan = 0.0;
  /// Estimated source-to-sink latency (max sink finish - min source start).
  double latency = 0.0;
  /// Busy seconds per processor.
  std::vector<double> proc_busy;

  std::string to_string(const MappingProblem& problem) const;
};

/// Topological list scheduling under the cost model. Traffic edges are
/// dependencies; tasks with no incoming edges start at time zero.
ScheduleResult list_schedule(const MappingProblem& problem,
                             const Assignment& assignment);

/// Checks an assignment against a latency bound; returns the margin
/// (positive: meets the constraint).
double latency_margin(const MappingProblem& problem,
                      const Assignment& assignment, double latency_bound);

}  // namespace sage::atot
