#include "atot/cost_model.hpp"

#include <algorithm>
#include <map>

#include "model/app.hpp"
#include "model/hardware.hpp"
#include "model/mapping.hpp"
#include "runtime/striping.hpp"
#include "support/error.hpp"

namespace sage::atot {

bool MappingProblem::proc_alive(int p) const {
  return std::find(proc_dead.begin(), proc_dead.end(), p) == proc_dead.end();
}

std::vector<int> MappingProblem::alive_procs() const {
  std::vector<int> alive;
  alive.reserve(static_cast<std::size_t>(proc_count()));
  for (int p = 0; p < proc_count(); ++p) {
    if (proc_alive(p)) alive.push_back(p);
  }
  SAGE_CHECK(!alive.empty(), "every processor is marked dead");
  return alive;
}

double MappingProblem::compute_seconds(int t, int p) const {
  const double flops = tasks[static_cast<std::size_t>(t)].work_flops;
  const double speed = proc_flops[static_cast<std::size_t>(p)];
  return speed > 0 ? flops / speed : 0.0;
}

double MappingProblem::comm_seconds(const Traffic& edge, int ps,
                                    int pd) const {
  if (ps == pd) return 0.0;
  return fabric.send_overhead_s + fabric.recv_overhead_s +
         fabric.transfer_seconds(ps, pd, edge.bytes);
}

MappingProblem build_problem(const model::Workspace& workspace) {
  MappingProblem problem;

  const model::ModelObject& root = workspace.root();
  const model::ModelObject& app = workspace.application();
  const model::ModelObject& hw = workspace.hardware();

  problem.fabric = model::to_fabric_model(hw);
  for (const model::ModelObject* cpu : model::processors(hw)) {
    // One flop per cycle: mhz * 1e6 effective flops/s.
    problem.proc_flops.push_back(cpu->property("mhz").as_double() * 1e6);
    problem.proc_mem_bytes.push_back(static_cast<std::size_t>(
        cpu->property_or("mem_bytes", 0).as_int()));
  }

  // Tasks: one per (function, thread); ids assigned densely in
  // topological function order so traffic edges always point forward.
  std::map<std::pair<std::string, int>, int> task_id;
  for (const model::ModelObject* fn : model::topological_order(app)) {
    const int threads =
        static_cast<int>(fn->property_or("threads", 1).as_int());
    const double work = fn->property_or("work_flops", 0.0).as_double();
    const std::string role = fn->property_or("role", "compute").as_string();
    // Per-thread staging memory: the sum of this thread's port slices.
    std::size_t thread_bytes = 0;
    for (const model::ModelObject* port : fn->children_of_type("port")) {
      const model::PortView view = model::port_view(*port);
      const std::size_t elem_bytes =
          model::datatype_bytes(root, view.datatype);
      const std::size_t total = view.total_elems() * elem_bytes;
      thread_bytes += (view.striping == model::Striping::kStriped)
                          ? total / static_cast<std::size_t>(threads)
                          : total;
    }
    for (int t = 0; t < threads; ++t) {
      Task task;
      task.id = problem.task_count();
      task.function = fn->name();
      task.thread = t;
      task.work_flops = work / threads;
      task.mem_bytes = thread_bytes;
      task.is_source = (role == "source");
      task.is_sink = (role == "sink");
      task_id[{fn->name(), t}] = task.id;
      problem.tasks.push_back(std::move(task));
    }
  }

  // Traffic: the exact per-thread-pair transfer volumes the runtime will
  // move, from the striping engine.
  for (const model::ModelObject* arc : model::arcs(app)) {
    const model::ArcView view = model::arc_view(app, *arc);
    const model::PortView src = model::port_view(*view.src_port);
    const model::PortView dst = model::port_view(*view.dst_port);
    const std::size_t elem_bytes =
        model::datatype_bytes(root, src.datatype);

    runtime::StripeSpec src_spec;
    src_spec.dims = src.dims;
    src_spec.striping = src.striping;
    src_spec.stripe_dim = src.stripe_dim;
    src_spec.threads =
        static_cast<int>(view.src_function->property_or("threads", 1).as_int());
    runtime::StripeSpec dst_spec;
    dst_spec.dims = dst.dims;
    dst_spec.striping = dst.striping;
    dst_spec.stripe_dim = dst.stripe_dim;
    dst_spec.threads =
        static_cast<int>(view.dst_function->property_or("threads", 1).as_int());

    for (const runtime::ThreadPairTransfer& pair :
         runtime::build_transfer_plan(src_spec, dst_spec)) {
      Traffic edge;
      edge.src_task =
          task_id.at({view.src_function->name(), pair.src_thread});
      edge.dst_task =
          task_id.at({view.dst_function->name(), pair.dst_thread});
      edge.bytes = pair.total_elems() * elem_bytes;
      problem.traffic.push_back(edge);
    }
  }

  return problem;
}

CostBreakdown evaluate(const MappingProblem& problem,
                       const Assignment& assignment,
                       const ObjectiveWeights& weights) {
  SAGE_CHECK(static_cast<int>(assignment.size()) == problem.task_count(),
             "assignment size mismatch");

  CostBreakdown cost;
  std::vector<double> load(static_cast<std::size_t>(problem.proc_count()),
                           0.0);
  for (int t = 0; t < problem.task_count(); ++t) {
    const int p = assignment[static_cast<std::size_t>(t)];
    SAGE_CHECK(p >= 0 && p < problem.proc_count(),
               "assignment maps task ", t, " to bad processor ", p);
    load[static_cast<std::size_t>(p)] += problem.compute_seconds(t, p);
  }
  cost.max_load = *std::max_element(load.begin(), load.end());
  double mean = 0.0;
  for (double l : load) mean += l;
  mean /= static_cast<double>(load.size());
  cost.imbalance = cost.max_load - mean;

  for (const Traffic& edge : problem.traffic) {
    cost.total_comm += problem.comm_seconds(
        edge, assignment[static_cast<std::size_t>(edge.src_task)],
        assignment[static_cast<std::size_t>(edge.dst_task)]);
  }

  // Memory feasibility: sum staged bytes per processor against capacity.
  if (!problem.proc_mem_bytes.empty()) {
    std::vector<std::size_t> used(
        static_cast<std::size_t>(problem.proc_count()), 0);
    for (int t = 0; t < problem.task_count(); ++t) {
      used[static_cast<std::size_t>(assignment[static_cast<std::size_t>(t)])] +=
          problem.tasks[static_cast<std::size_t>(t)].mem_bytes;
    }
    for (int p = 0; p < problem.proc_count(); ++p) {
      const std::size_t capacity =
          problem.proc_mem_bytes[static_cast<std::size_t>(p)];
      if (capacity > 0 && used[static_cast<std::size_t>(p)] > capacity) {
        cost.mem_overflow_bytes +=
            used[static_cast<std::size_t>(p)] - capacity;
      }
    }
  }

  // Degraded mode: tasks landing on dead processors are heavily
  // penalized so any survivor-only placement dominates.
  double dead_penalty = 0.0;
  if (!problem.proc_dead.empty()) {
    for (int t = 0; t < problem.task_count(); ++t) {
      if (!problem.proc_alive(assignment[static_cast<std::size_t>(t)])) {
        dead_penalty += weights.dead_task_penalty;
      }
    }
  }

  cost.objective = weights.load * cost.max_load +
                   weights.comm * cost.total_comm +
                   weights.imbalance * cost.imbalance +
                   weights.mem_overflow_per_mib *
                       (static_cast<double>(cost.mem_overflow_bytes) /
                        (1024.0 * 1024.0)) +
                   dead_penalty;
  return cost;
}

CostModel::CostModel(MappingProblem problem, std::vector<double> cpu_scales)
    : problem_(std::move(problem)), cpu_scales_(std::move(cpu_scales)) {
  SAGE_CHECK(cpu_scales_.empty() ||
                 static_cast<int>(cpu_scales_.size()) == problem_.proc_count(),
             "cpu_scales size ", cpu_scales_.size(), " != processor count ",
             problem_.proc_count());
  for (int p = 0; p < problem_.proc_count(); ++p) {
    problem_.proc_flops[static_cast<std::size_t>(p)] =
        kCalibratedUnitFlops / cpu_scale(p);
  }
}

double CostModel::cpu_scale(int p) const {
  if (cpu_scales_.empty()) return 1.0;
  SAGE_CHECK(p >= 0 && p < static_cast<int>(cpu_scales_.size()),
             "cpu_scale of bad processor ", p);
  const double scale = cpu_scales_[static_cast<std::size_t>(p)];
  return scale > 0 ? scale : 1.0;
}

void CostModel::calibrate(const CalibrationProfile& profile) {
  if (profile.empty()) return;
  const Assignment& measured = profile.measured_assignment;
  SAGE_CHECK(static_cast<int>(measured.size()) == problem_.task_count(),
             "calibration profile's measured_assignment has ",
             measured.size(), " entries for ", problem_.task_count(),
             " tasks");
  const double iterations = std::max(1, profile.iterations);

  // Compute: invert the emulator's charging rule (see header) to get the
  // per-thread per-iteration host cost of each measured function, then
  // express it as work_flops against the scale-aware proc_flops.
  for (const CalibrationProfile::FunctionSample& sample : profile.functions) {
    if (!(sample.busy_seconds > 0.0)) continue;
    double scale_sum = 0.0;
    for (const Task& task : problem_.tasks) {
      if (task.function != sample.function) continue;
      scale_sum += cpu_scale(measured[static_cast<std::size_t>(task.id)]);
    }
    if (!(scale_sum > 0.0)) continue;  // unknown function: keep estimate
    const double host_seconds_per_thread =
        sample.busy_seconds / (iterations * scale_sum);
    for (Task& task : problem_.tasks) {
      if (task.function != sample.function) continue;
      task.work_flops = host_seconds_per_thread * kCalibratedUnitFlops;
    }
  }

  // Communication: compare observed per-(src, dst)-node bytes against
  // what the traffic table predicts under the measured placement, and
  // rescale the crossing edges by the ratio (framing, retries, and
  // credit messages all land in the measurement; the model absorbs them
  // proportionally). Co-located edges keep their static volumes.
  std::map<std::pair<int, int>, double> predicted;
  for (const Traffic& edge : problem_.traffic) {
    const int ps = measured[static_cast<std::size_t>(edge.src_task)];
    const int pd = measured[static_cast<std::size_t>(edge.dst_task)];
    if (ps == pd) continue;
    predicted[{ps, pd}] += static_cast<double>(edge.bytes) * iterations;
  }
  std::map<std::pair<int, int>, double> factor;
  for (const CalibrationProfile::LinkSample& sample : profile.links) {
    const auto it = predicted.find({sample.src_node, sample.dst_node});
    if (it == predicted.end() || !(it->second > 0.0)) continue;
    if (!(sample.bytes > 0.0)) continue;
    factor[{sample.src_node, sample.dst_node}] = sample.bytes / it->second;
  }
  if (!factor.empty()) {
    for (Traffic& edge : problem_.traffic) {
      const int ps = measured[static_cast<std::size_t>(edge.src_task)];
      const int pd = measured[static_cast<std::size_t>(edge.dst_task)];
      const auto it = factor.find({ps, pd});
      if (it == factor.end()) continue;
      edge.bytes = static_cast<std::size_t>(
          static_cast<double>(edge.bytes) * it->second + 0.5);
    }
  }
}

void apply_assignment(model::Workspace& workspace,
                      const MappingProblem& problem,
                      const Assignment& assignment) {
  SAGE_CHECK(static_cast<int>(assignment.size()) == problem.task_count(),
             "assignment size mismatch");
  model::ModelObject& mapping = workspace.mapping();

  // Clear existing assignments.
  while (true) {
    const auto existing = mapping.children_of_type("assignment");
    if (existing.empty()) break;
    mapping.remove_child(*existing.front());
  }

  // Threads must be assigned in order so that thread t becomes the t-th
  // assignment of its function.
  for (int t = 0; t < problem.task_count(); ++t) {
    const Task& task = problem.tasks[static_cast<std::size_t>(t)];
    model::assign_ranks(workspace.root(), mapping, task.function,
                        {assignment[static_cast<std::size_t>(t)]});
  }
}

}  // namespace sage::atot
