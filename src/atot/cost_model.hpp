// openSAGE -- AToT cost model.
//
// Turns a design workspace into the task-level optimization problem the
// Architecture Trades and Optimization Tool works on: one task per
// (function, thread), per-task compute estimates from the function's
// work_flops and the candidate processor's clock, and per-task-pair
// communication volumes taken from the same striping transfer plans the
// runtime executes (so the optimizer sees the traffic the machine will
// actually carry).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "model/workspace.hpp"
#include "net/fabric_model.hpp"

namespace sage::atot {

/// One schedulable unit: a single thread of a model function.
struct Task {
  int id = -1;
  std::string function;
  int thread = 0;
  double work_flops = 0.0;
  /// Staging memory this thread needs (sum of its port slices).
  std::size_t mem_bytes = 0;
  bool is_source = false;
  bool is_sink = false;
};

/// Directed traffic between two tasks (bytes per iteration).
struct Traffic {
  int src_task = -1;
  int dst_task = -1;
  std::size_t bytes = 0;
};

struct MappingProblem {
  std::vector<Task> tasks;
  std::vector<Traffic> traffic;
  /// Effective flops/second of each processor (rank-ordered).
  std::vector<double> proc_flops;
  /// DRAM capacity of each processor (rank-ordered; 0 = unlimited).
  std::vector<std::size_t> proc_mem_bytes;
  /// Processors excluded from mapping (degraded mode / failed nodes).
  /// Empty means every processor is available. Mappers never place a
  /// task on a dead processor; evaluate() penalizes assignments that do.
  std::vector<int> proc_dead;
  net::FabricModel fabric;

  int task_count() const { return static_cast<int>(tasks.size()); }
  int proc_count() const { return static_cast<int>(proc_flops.size()); }

  bool proc_alive(int p) const;
  /// Surviving processor ranks, ascending. Throws sage::Error when the
  /// dead set leaves no processor.
  std::vector<int> alive_procs() const;

  /// Seconds task `t` takes on processor `p`.
  double compute_seconds(int t, int p) const;
  /// Seconds a traffic edge takes when its endpoints sit on (ps, pd);
  /// zero when co-located.
  double comm_seconds(const Traffic& edge, int ps, int pd) const;
};

/// Builds the problem from a validated workspace (application + hardware;
/// the mapping model is ignored -- it is AToT's output).
MappingProblem build_problem(const model::Workspace& workspace);

/// An assignment maps task id -> processor rank.
using Assignment = std::vector<int>;

/// Cost summary of one assignment.
struct CostBreakdown {
  double max_load = 0.0;      // busiest processor's compute seconds
  double total_comm = 0.0;    // cross-processor communication seconds
  double imbalance = 0.0;     // max_load - mean_load
  /// Bytes by which processor memory budgets are exceeded (0: fits).
  std::size_t mem_overflow_bytes = 0;
  double objective = 0.0;     // weighted sum used as GA fitness

  bool fits_memory() const { return mem_overflow_bytes == 0; }
};

struct ObjectiveWeights {
  double load = 1.0;
  double comm = 1.0;
  double imbalance = 0.5;
  /// Penalty in objective units per overflowed MiB; large by default so
  /// infeasible placements lose to any feasible one.
  double mem_overflow_per_mib = 100.0;
  /// Penalty per task assigned to a dead processor (degraded mode).
  double dead_task_penalty = 1e6;
};

CostBreakdown evaluate(const MappingProblem& problem,
                       const Assignment& assignment,
                       const ObjectiveWeights& weights = {});

/// Writes an assignment back into the workspace's mapping model
/// (replacing existing assignments).
void apply_assignment(model::Workspace& workspace,
                      const MappingProblem& problem,
                      const Assignment& assignment);

}  // namespace sage::atot
