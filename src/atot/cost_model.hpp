// openSAGE -- AToT cost model.
//
// Turns a design workspace into the task-level optimization problem the
// Architecture Trades and Optimization Tool works on: one task per
// (function, thread), per-task compute estimates from the function's
// work_flops and the candidate processor's clock, and per-task-pair
// communication volumes taken from the same striping transfer plans the
// runtime executes (so the optimizer sees the traffic the machine will
// actually carry).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "model/workspace.hpp"
#include "net/fabric_model.hpp"

namespace sage::atot {

/// One schedulable unit: a single thread of a model function.
struct Task {
  int id = -1;
  std::string function;
  int thread = 0;
  double work_flops = 0.0;
  /// Staging memory this thread needs (sum of its port slices).
  std::size_t mem_bytes = 0;
  bool is_source = false;
  bool is_sink = false;
};

/// Directed traffic between two tasks (bytes per iteration).
struct Traffic {
  int src_task = -1;
  int dst_task = -1;
  std::size_t bytes = 0;
};

struct MappingProblem {
  std::vector<Task> tasks;
  std::vector<Traffic> traffic;
  /// Effective flops/second of each processor (rank-ordered).
  std::vector<double> proc_flops;
  /// DRAM capacity of each processor (rank-ordered; 0 = unlimited).
  std::vector<std::size_t> proc_mem_bytes;
  /// Processors excluded from mapping (degraded mode / failed nodes).
  /// Empty means every processor is available. Mappers never place a
  /// task on a dead processor; evaluate() penalizes assignments that do.
  std::vector<int> proc_dead;
  net::FabricModel fabric;

  int task_count() const { return static_cast<int>(tasks.size()); }
  int proc_count() const { return static_cast<int>(proc_flops.size()); }

  bool proc_alive(int p) const;
  /// Surviving processor ranks, ascending. Throws sage::Error when the
  /// dead set leaves no processor.
  std::vector<int> alive_procs() const;

  /// Seconds task `t` takes on processor `p`.
  double compute_seconds(int t, int p) const;
  /// Seconds a traffic edge takes when its endpoints sit on (ps, pd);
  /// zero when co-located.
  double comm_seconds(const Traffic& edge, int ps, int pd) const;
};

/// Builds the problem from a validated workspace (application + hardware;
/// the mapping model is ignored -- it is AToT's output).
MappingProblem build_problem(const model::Workspace& workspace);

/// An assignment maps task id -> processor rank.
using Assignment = std::vector<int>;

/// Cost summary of one assignment.
struct CostBreakdown {
  double max_load = 0.0;      // busiest processor's compute seconds
  double total_comm = 0.0;    // cross-processor communication seconds
  double imbalance = 0.0;     // max_load - mean_load
  /// Bytes by which processor memory budgets are exceeded (0: fits).
  std::size_t mem_overflow_bytes = 0;
  double objective = 0.0;     // weighted sum used as GA fitness

  bool fits_memory() const { return mem_overflow_bytes == 0; }
};

struct ObjectiveWeights {
  double load = 1.0;
  double comm = 1.0;
  double imbalance = 0.5;
  /// Penalty in objective units per overflowed MiB; large by default so
  /// infeasible placements lose to any feasible one.
  double mem_overflow_per_mib = 100.0;
  /// Penalty per task assigned to a dead processor (degraded mode).
  double dead_task_penalty = 1e6;
};

CostBreakdown evaluate(const MappingProblem& problem,
                       const Assignment& assignment,
                       const ObjectiveWeights& weights = {});

/// A measured execution profile: what the runtime actually observed over
/// one tuning window, in the shape calibration needs. Built from
/// `MetricsSnapshot` series by `runtime::Tuner` (or by hand in tests).
struct CalibrationProfile {
  struct FunctionSample {
    std::string function;
    /// Virtual busy seconds summed over all of the function's threads
    /// for the whole window.
    double busy_seconds = 0.0;
    double invocations = 0.0;
  };
  struct LinkSample {
    int src_node = -1;
    int dst_node = -1;
    /// Payload bytes observed on the (src, dst) link over the window.
    double bytes = 0.0;
  };
  std::vector<FunctionSample> functions;
  std::vector<LinkSample> links;
  /// Data sets processed during the window (normalizes busy/bytes to
  /// per-iteration costs).
  int iterations = 1;
  /// The placement the profile was measured under (task -> processor).
  /// Required whenever `functions` or `links` is non-empty: observed
  /// costs only make sense relative to where the work ran.
  Assignment measured_assignment;

  bool empty() const { return functions.empty() && links.empty(); }
};

/// Flop rate calibrate() assigns to a unit-cpu_scale processor. The
/// absolute value cancels out of every compute_seconds() ratio; it only
/// anchors work_flops to "host seconds on a unit-scale processor".
inline constexpr double kCalibratedUnitFlops = 1e6;

/// Wraps a MappingProblem with the per-processor cpu_scale vector the
/// emulated machine charges compute with, and replaces the static cost
/// estimates with observed ones.
///
/// Calibration identity: the emulator charges a kernel's host CPU time
/// multiplied by the processor's cpu_scale, and work splits evenly over
/// a function's threads. So from a window measured under assignment A,
/// the per-thread per-iteration host cost of function f is
///   h_f = busy_f / (iterations * sum over threads u of scale(A[u]))
/// and setting work_flops = h_f * kCalibratedUnitFlops together with
/// proc_flops[p] = kCalibratedUnitFlops / scale(p) makes the model's
/// compute_seconds(t, p) = h_f * scale(p) -- exactly what the machine
/// will charge. The calibrated problem reproduces A's measured per-
/// processor loads and extrapolates any other placement.
class CostModel {
 public:
  /// `cpu_scales` is rank-ordered; empty means 1.0 everywhere. The
  /// wrapped problem's proc_flops is immediately rewritten scale-aware
  /// (kCalibratedUnitFlops / scale) so un-calibrated and calibrated
  /// objectives live on the same scale.
  explicit CostModel(MappingProblem problem,
                     std::vector<double> cpu_scales = {});

  const MappingProblem& problem() const { return problem_; }
  MappingProblem& problem() { return problem_; }

  /// cpu_scale of processor `p` (1.0 when unspecified).
  double cpu_scale(int p) const;

  /// Folds one measured window into the problem: per-task work_flops
  /// from observed busy seconds, per-edge bytes rescaled by observed
  /// link traffic. Pure in (problem, profile): repeated calls with the
  /// same profile are bit-identical. Throws sage::Error when the
  /// profile's measured_assignment is missing or mis-sized.
  void calibrate(const CalibrationProfile& profile);

 private:
  MappingProblem problem_;
  std::vector<double> cpu_scales_;
};

/// Writes an assignment back into the workspace's mapping model
/// (replacing existing assignments).
void apply_assignment(model::Workspace& workspace,
                      const MappingProblem& problem,
                      const Assignment& assignment);

}  // namespace sage::atot
