#include "atot/mapper.hpp"

#include <algorithm>
#include <numeric>

#include "atot/scheduler.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace sage::atot {

namespace {

using support::Rng;

Assignment random_assignment(const MappingProblem& problem,
                             const std::vector<int>& alive, Rng& rng) {
  Assignment a(static_cast<std::size_t>(problem.task_count()));
  for (auto& gene : a) {
    gene = alive[static_cast<std::size_t>(
        rng.below(static_cast<std::uint64_t>(alive.size())))];
  }
  return a;
}

}  // namespace

Assignment random_mapping(const MappingProblem& problem, std::uint64_t seed) {
  Rng rng(seed);
  return random_assignment(problem, problem.alive_procs(), rng);
}

Assignment round_robin_mapping(const MappingProblem& problem) {
  const std::vector<int> alive = problem.alive_procs();
  Assignment a(static_cast<std::size_t>(problem.task_count()));
  for (int t = 0; t < problem.task_count(); ++t) {
    a[static_cast<std::size_t>(t)] =
        alive[static_cast<std::size_t>(t) % alive.size()];
  }
  return a;
}

Assignment greedy_mapping(const MappingProblem& problem) {
  // Order tasks by descending work; place each on the processor that
  // minimizes (new load + communication to already-placed neighbours).
  std::vector<int> order(static_cast<std::size_t>(problem.task_count()));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return problem.tasks[static_cast<std::size_t>(a)].work_flops >
           problem.tasks[static_cast<std::size_t>(b)].work_flops;
  });

  const std::vector<int> alive = problem.alive_procs();
  Assignment assignment(static_cast<std::size_t>(problem.task_count()), -1);
  std::vector<double> load(static_cast<std::size_t>(problem.proc_count()),
                           0.0);

  for (int t : order) {
    double best_cost = 0.0;
    int best_proc = -1;
    for (const int p : alive) {
      double cost = load[static_cast<std::size_t>(p)] +
                    problem.compute_seconds(t, p);
      for (const Traffic& edge : problem.traffic) {
        const int other = (edge.src_task == t)   ? edge.dst_task
                          : (edge.dst_task == t) ? edge.src_task
                                                 : -1;
        if (other < 0) continue;
        const int other_proc = assignment[static_cast<std::size_t>(other)];
        if (other_proc < 0) continue;
        cost += problem.comm_seconds(edge, p, other_proc);
      }
      if (best_proc < 0 || cost < best_cost) {
        best_cost = cost;
        best_proc = p;
      }
    }
    assignment[static_cast<std::size_t>(t)] = best_proc;
    load[static_cast<std::size_t>(best_proc)] +=
        problem.compute_seconds(t, best_proc);
  }
  return assignment;
}

GeneticResult genetic_mapping(const MappingProblem& problem,
                              const GeneticOptions& options) {
  SAGE_CHECK(options.population >= 4, "population too small");
  SAGE_CHECK(problem.task_count() > 0, "empty mapping problem");
  const std::vector<int> alive = problem.alive_procs();
  Rng rng(options.seed);

  struct Individual {
    Assignment genes;
    double fitness = 0.0;  // objective: lower is better
  };

  auto fitness_of = [&](const Assignment& a) {
    double fitness = evaluate(problem, a, options.weights).objective;
    if (options.latency_bound > 0) {
      const double latency = list_schedule(problem, a).latency;
      if (latency > options.latency_bound) {
        fitness += options.latency_penalty_weight *
                   (latency - options.latency_bound);
      }
    }
    return fitness;
  };

  // Seed the population with the greedy and round-robin solutions so the
  // GA never does worse than the baselines.
  std::vector<Individual> population;
  population.reserve(static_cast<std::size_t>(options.population));
  population.push_back({greedy_mapping(problem), 0.0});
  population.push_back({round_robin_mapping(problem), 0.0});
  for (const Assignment& seed : options.seeds) {
    SAGE_CHECK(static_cast<int>(seed.size()) == problem.task_count(),
               "GA seed has ", seed.size(), " genes for ",
               problem.task_count(), " tasks");
    if (static_cast<int>(population.size()) < options.population) {
      population.push_back({seed, 0.0});
    }
  }
  while (static_cast<int>(population.size()) < options.population) {
    population.push_back({random_assignment(problem, alive, rng), 0.0});
  }
  for (Individual& ind : population) ind.fitness = fitness_of(ind.genes);

  auto best_of_population = [&]() {
    return std::min_element(population.begin(), population.end(),
                            [](const Individual& a, const Individual& b) {
                              return a.fitness < b.fitness;
                            });
  };

  auto tournament_pick = [&]() -> const Individual& {
    const Individual* best = nullptr;
    for (int i = 0; i < options.tournament; ++i) {
      const Individual& cand = population[static_cast<std::size_t>(
          rng.below(population.size()))];
      if (best == nullptr || cand.fitness < best->fitness) best = &cand;
    }
    return *best;
  };

  GeneticResult result;
  result.best = best_of_population()->genes;
  double best_fitness = best_of_population()->fitness;
  int stall = 0;

  for (int gen = 0; gen < options.generations; ++gen) {
    std::vector<Individual> next;
    next.reserve(population.size());

    // Elitism.
    std::vector<int> by_fitness(population.size());
    std::iota(by_fitness.begin(), by_fitness.end(), 0);
    std::partial_sort(by_fitness.begin(),
                      by_fitness.begin() + options.elites, by_fitness.end(),
                      [&](int a, int b) {
                        return population[static_cast<std::size_t>(a)].fitness <
                               population[static_cast<std::size_t>(b)].fitness;
                      });
    for (int e = 0; e < options.elites; ++e) {
      next.push_back(population[static_cast<std::size_t>(by_fitness[
          static_cast<std::size_t>(e)])]);
    }

    while (next.size() < population.size()) {
      Individual child;
      const Individual& a = tournament_pick();
      if (rng.chance(options.crossover_rate)) {
        const Individual& b = tournament_pick();
        child.genes.resize(a.genes.size());
        for (std::size_t g = 0; g < a.genes.size(); ++g) {
          child.genes[g] = rng.chance(0.5) ? a.genes[g] : b.genes[g];
        }
      } else {
        child.genes = a.genes;
      }
      for (auto& gene : child.genes) {
        if (rng.chance(options.mutation_rate)) {
          gene = alive[static_cast<std::size_t>(
              rng.below(static_cast<std::uint64_t>(alive.size())))];
        }
      }
      child.fitness = fitness_of(child.genes);
      next.push_back(std::move(child));
    }
    population = std::move(next);
    ++result.generations_run;

    const auto best_it = best_of_population();
    if (best_it->fitness < best_fitness) {
      best_fitness = best_it->fitness;
      result.best = best_it->genes;
      stall = 0;
    } else {
      ++stall;
    }
    result.history.push_back(best_fitness);
    if (options.stall_generations > 0 && stall >= options.stall_generations) {
      break;
    }
  }

  result.cost = evaluate(problem, result.best, options.weights);
  return result;
}

}  // namespace sage::atot
