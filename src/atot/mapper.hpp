// openSAGE -- AToT mappers.
//
// "After the architecture trades process has determined a target
// hardware architecture, the genetic algorithm based partitioning and
// mapping capability of AToT assigns the application tasks to the
// multi-processor, heterogeneous architecture." The GA optimizes the
// weighted objective of the cost model (CPU load balancing,
// communication minimization); greedy, round-robin, and random mappers
// serve as baselines for the trades benches.
#pragma once

#include <cstdint>
#include <vector>

#include "atot/cost_model.hpp"

namespace sage::atot {

struct GeneticOptions {
  int population = 64;
  int generations = 120;
  double crossover_rate = 0.9;
  double mutation_rate = 0.05;   // per gene
  int tournament = 3;
  int elites = 2;
  std::uint64_t seed = 0x5A6E2000u;
  ObjectiveWeights weights;
  /// Stop early after this many generations without improvement (0: off).
  int stall_generations = 30;
  /// Latency constraint (seconds, estimated by the list scheduler);
  /// 0 disables. Violations are penalized in the fitness, steering the
  /// GA toward designs that meet the requirement.
  double latency_bound = 0.0;
  double latency_penalty_weight = 10.0;
  /// Assignments injected into the initial population ahead of the
  /// random fill -- e.g. the incumbent placement when re-mapping online,
  /// or the survivor-repaired mapping after a node death. With elites
  /// > 0 the result is never worse than the best seed. Seeds must have
  /// task_count() genes; dead-processor genes are legal (the objective
  /// penalizes them away).
  std::vector<Assignment> seeds;
};

struct GeneticResult {
  Assignment best;
  CostBreakdown cost;
  /// Best objective after each generation (for convergence plots).
  std::vector<double> history;
  int generations_run = 0;
};

/// Genetic-algorithm mapping. Deterministic for a fixed seed.
GeneticResult genetic_mapping(const MappingProblem& problem,
                              const GeneticOptions& options = {});

/// Longest-processing-time-first onto the least-loaded processor, with a
/// communication-affinity tie break.
Assignment greedy_mapping(const MappingProblem& problem);

/// Task i -> processor i mod P.
Assignment round_robin_mapping(const MappingProblem& problem);

/// Uniform random assignment (the GA's initial population shape).
Assignment random_mapping(const MappingProblem& problem, std::uint64_t seed);

}  // namespace sage::atot
