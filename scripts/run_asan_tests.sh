#!/bin/sh
# Builds openSAGE with AddressSanitizer and runs the memory-heavy
# suites: buffer-pool reuse across warm runs, striping/redistribution
# copies, and the fault-injection frame path (header packing, corrupted
# payload byte flips, tombstone handling). Run this after touching
# buffer management or the framed transfer code. The viz/metrics suites
# ride along for the CSV/JSON escaping paths and the registry's shard
# storage.
#
# Usage: scripts/run_asan_tests.sh [build-dir]
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build-asan"}

cmake -B "$build_dir" -S "$repo_root" -DSAGE_ASAN=ON
cmake --build "$build_dir" -j \
  --target net_test session_test striping_test fault_test \
  integration_pipeline_test viz_test metrics_test
cd "$build_dir"
# The suppressions cover a pre-existing bounded leak: the Alter
# interpreter's environment<->closure shared_ptr cycle (see the file).
ASAN_OPTIONS=${ASAN_OPTIONS:-halt_on_error=1:detect_leaks=1} \
LSAN_OPTIONS=${LSAN_OPTIONS:-"suppressions=$repo_root/scripts/lsan_suppressions.txt"} \
  ctest --output-on-failure \
  -R '(Fabric|Session|Striping|Redistribution|Fault|Degraded|Pipeline|Metrics|Trace|Analysis|Export)'
