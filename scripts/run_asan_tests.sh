#!/bin/sh
# Back-compat wrapper; the flavors are consolidated in
# run_sanitizer_tests.sh.
#
# Usage: scripts/run_asan_tests.sh [build-dir]
set -eu
exec "$(dirname -- "$0")/run_sanitizer_tests.sh" asan ${1:+"$1"}
