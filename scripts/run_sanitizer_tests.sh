#!/bin/sh
# Builds openSAGE under one sanitizer flavor and runs the suites that
# flavor is for. Replaces the three run_{asan,tsan,ubsan}_tests.sh
# scripts (kept as thin wrappers); the per-flavor build flags, targets,
# env vars, and ctest filters all live here.
#
#   asan  -- AddressSanitizer + LeakSanitizer: the memory-heavy suites
#            (buffer-pool reuse across warm runs, striping copies, the
#            fault-injection frame path, program blob round-trips). The
#            LSan suppressions cover a pre-existing bounded leak: the
#            Alter interpreter's environment<->closure shared_ptr cycle.
#            All three flavors also run the Alter bytecode pipeline
#            suites (reader/compiler/VM, script differentials, codegen
#            goldens): the VM manages frame/chunk shared_ptr graphs and
#            a manually indexed value stack -- exactly what sanitizers
#            are for.
#   tsan  -- ThreadSanitizer: the concurrency-heavy suites (emulated
#            machine dispatch handshake, fabric, MPI layer, the
#            engine/session execution paths, the streaming executor --
#            overlapped tickets on one machine epoch with credit flow
#            control -- multi-session sharing of one CompiledProgram,
#            the metrics registry's lock-free per-node shards, the
#            serve::Server fleet: caller threads racing admission and
#            quota accounting against worker threads realizing
#            coalesced streaming tickets -- and the transport backends:
#            shmem sender/drain threads around the forked node
#            processes' rings, the TCP per-node reader threads, and the
#            online tuner hot-swapping programs against a host thread
#            blocked in wait()).
#   ubsan -- UndefinedBehaviorSanitizer: the arithmetic-heavy paths
#            (compiled transfer programs and their serialized form,
#            striping/run-intersection math, FFT permutation and twiddle
#            indexing, fault frame packing). UBSan composes with ASan;
#            set SAGE_EXTRA_CMAKE_FLAGS=-DSAGE_ASAN=ON for the combined
#            build.
#
# Usage: scripts/run_sanitizer_tests.sh <asan|tsan|ubsan> [build-dir]
set -eu

flavor=${1:-}
repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)

case "$flavor" in
  asan)
    cmake_flag=-DSAGE_ASAN=ON
    targets="net_test session_test streaming_test striping_test fault_test \
      integration_pipeline_test viz_test metrics_test program_test \
      random_graph_test serve_test transport_test tuner_test \
      alter_test alter_script_test codegen_test codegen_golden_test"
    filter='(Fabric|Session|Streaming|Striping|Redistribution|Fault|Degraded|Pipeline|Metrics|Trace|Analysis|Export|Program|PlanCache|RandomChain|Diamond|Serve|Transport|Shmem|Tuner|Alter|Reader|Eval|Builtin|Emit|Vm|Codegen)'
    ;;
  tsan)
    cmake_flag=-DSAGE_TSAN=ON
    targets="net_test mpi_test engine_test session_test streaming_test \
      fault_test viz_test metrics_test program_test random_graph_test \
      serve_test transport_test tuner_test \
      alter_test alter_script_test codegen_test codegen_golden_test"
    filter='(Machine|Fabric|Mpi|Engine|Session|Streaming|Redistribution|WarmCold|Fault|Degraded|Metrics|Trace|Analysis|Export|Program|PlanCache|RandomChain|Diamond|Serve|Transport|Shmem|Tuner|Alter|Reader|Eval|Builtin|Emit|Vm|Codegen)'
    ;;
  ubsan)
    cmake_flag=-DSAGE_UBSAN=ON
    targets="net_test session_test streaming_test striping_test fault_test \
      integration_pipeline_test isspl_test registry_test metrics_test \
      program_test random_graph_test serve_test transport_test tuner_test \
      alter_test alter_script_test codegen_test codegen_golden_test"
    filter='(Fabric|Session|Streaming|Striping|Redistribution|Fault|Degraded|Pipeline|Fft|Kernel|Plan|Metrics|Program|PlanCache|RandomChain|Diamond|Serve|Transport|Shmem|Tuner|Alter|Reader|Eval|Builtin|Emit|Vm|Codegen)'
    ;;
  *)
    echo "usage: $0 <asan|tsan|ubsan> [build-dir]" >&2
    exit 2
    ;;
esac

build_dir=${2:-"$repo_root/build-$flavor"}

# shellcheck disable=SC2086  # SAGE_EXTRA_CMAKE_FLAGS is a flag list
cmake -B "$build_dir" -S "$repo_root" "$cmake_flag" \
  ${SAGE_EXTRA_CMAKE_FLAGS:-}
# shellcheck disable=SC2086  # targets is a word list
cmake --build "$build_dir" -j --target $targets
cd "$build_dir"

case "$flavor" in
  asan)
    ASAN_OPTIONS=${ASAN_OPTIONS:-halt_on_error=1:detect_leaks=1} \
    LSAN_OPTIONS=${LSAN_OPTIONS:-"suppressions=$repo_root/scripts/lsan_suppressions.txt"} \
      ctest --output-on-failure -R "$filter"
    ;;
  tsan)
    TSAN_OPTIONS=${TSAN_OPTIONS:-halt_on_error=1} \
      ctest --output-on-failure -R "$filter"
    ;;
  ubsan)
    UBSAN_OPTIONS=${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1} \
      ctest --output-on-failure -R "$filter"
    ;;
esac
