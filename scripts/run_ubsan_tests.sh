#!/bin/sh
# Builds openSAGE with UndefinedBehaviorSanitizer and runs the suites
# that exercise the arithmetic-heavy paths: the compiled transfer
# programs (interned staging indices, per-segment byte offsets), the
# striping/run-intersection math, the FFT permutation tables and
# twiddle indexing, and the fault-injection frame packing. Run this
# after touching index arithmetic in the data plane or the ISSPL
# kernels. UBSan composes with ASan; pass -DSAGE_ASAN=ON yourself if
# you want the combined build.
#
# Usage: scripts/run_ubsan_tests.sh [build-dir]
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build-ubsan"}

cmake -B "$build_dir" -S "$repo_root" -DSAGE_UBSAN=ON
cmake --build "$build_dir" -j \
  --target net_test session_test striping_test fault_test \
  integration_pipeline_test isspl_test registry_test metrics_test
cd "$build_dir"
UBSAN_OPTIONS=${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1} \
  ctest --output-on-failure \
  -R '(Fabric|Session|Striping|Redistribution|Fault|Degraded|Pipeline|Fft|Kernel|Plan|Metrics)'
