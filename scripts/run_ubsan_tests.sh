#!/bin/sh
# Back-compat wrapper; the flavors are consolidated in
# run_sanitizer_tests.sh.
#
# Usage: scripts/run_ubsan_tests.sh [build-dir]
set -eu
exec "$(dirname -- "$0")/run_sanitizer_tests.sh" ubsan ${1:+"$1"}
