#!/bin/sh
# Back-compat wrapper; the flavors are consolidated in
# run_sanitizer_tests.sh.
#
# Usage: scripts/run_tsan_tests.sh [build-dir]
set -eu
exec "$(dirname -- "$0")/run_sanitizer_tests.sh" tsan ${1:+"$1"}
