#!/bin/sh
# Builds openSAGE with ThreadSanitizer and runs the concurrency-heavy
# suites: the emulated machine (parked node threads), the fabric, the
# MPI layer, the engine/session execution paths, and the fault-injection
# chaos suite (retransmits and degraded-mode remaps exercise the fabric
# from every node thread at once). The warm-session dispatch handshake
# (net::Machine) is exactly the kind of code TSan is for -- run this
# after touching it. The metrics suites ride along: the registry's
# lock-free per-node shards follow the EventBuffer threading model and
# every node thread writes them on the hot path.
#
# Usage: scripts/run_tsan_tests.sh [build-dir]
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build-tsan"}

cmake -B "$build_dir" -S "$repo_root" -DSAGE_TSAN=ON
cmake --build "$build_dir" -j \
  --target net_test mpi_test engine_test session_test fault_test \
  viz_test metrics_test
cd "$build_dir"
TSAN_OPTIONS=${TSAN_OPTIONS:-halt_on_error=1} \
  ctest --output-on-failure -R '(Machine|Fabric|Mpi|Engine|Session|Redistribution|WarmCold|Fault|Degraded|Metrics|Trace|Analysis|Export)'
