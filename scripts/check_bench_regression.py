#!/usr/bin/env python3
"""Bench-regression gate for the warm-session data plane.

Compares the `--json` output of the benchmark binaries against the
committed baseline (BENCH_baseline.json at the repo root) and fails when
any warm host time regresses by more than the allowed threshold.

Usage:
    scripts/check_bench_regression.py CURRENT.json [CURRENT2.json ...]
        [--baseline BENCH_baseline.json] [--threshold 0.10]

    # Typical CI flow (from the build directory):
    bench/table1_fft2d --json fft2d.json
    bench/table1_cornerturn --json cornerturn.json
    bench/scaling --json scaling.json
    bench/session_create --json session_create.json
    bench/pipeline_period --json pipeline_period.json
    ../scripts/check_bench_regression.py fft2d.json cornerturn.json \
        scaling.json session_create.json pipeline_period.json

Each CURRENT file is one benchmark binary's report (bench name inside
the file). The gate only inspects warm host seconds -- virtual-time
results are deterministic and covered by unit tests; host time is what
the zero-copy data plane optimises, and what silently regresses.

Host timings on small configurations are noisy, so labels whose
baseline warm time is below --min-seconds (default 1 ms) are reported
but never fail the gate.

Exit status: 0 when every label is within threshold, 1 on regression,
2 on usage/baseline mismatch errors.
"""

import argparse
import json
import sys

DEFAULT_THRESHOLD = 0.10
DEFAULT_MIN_SECONDS = 0.001
GATED_BENCHES = ("table1_fft2d", "table1_cornerturn", "scaling",
                 "session_create", "pipeline_period", "serve_load",
                 "transport_overhead", "atot_mapping", "tune_convergence",
                 "glue_codegen")


def load_report(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        raise SystemExit(f"error: cannot read {path}: {err}")


def warm_times(report):
    """Maps host label -> warm seconds for one bench report."""
    out = {}
    for host in report.get("host", []):
        out[host["label"]] = float(host["warm_seconds"])
    return out


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", nargs="+",
                        help="--json output files from the bench binaries")
    parser.add_argument("--baseline", default="BENCH_baseline.json",
                        help="committed baseline file (default: "
                             "BENCH_baseline.json)")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="max allowed relative warm-time regression "
                             "(default 0.10 = 10%%)")
    parser.add_argument("--min-seconds", type=float,
                        default=DEFAULT_MIN_SECONDS,
                        help="baseline warm times below this are too noisy "
                             "to gate (default 0.001)")
    args = parser.parse_args(argv)

    baseline = load_report(args.baseline)
    baseline_benches = baseline.get("benches", {})
    if not baseline_benches:
        print(f"error: {args.baseline} has no 'benches' table", file=sys.stderr)
        return 2

    failures = []
    checked = 0
    seen_benches = set()
    for path in args.current:
        report = load_report(path)
        bench = report.get("bench", "")
        seen_benches.add(bench)
        if bench not in GATED_BENCHES:
            print(f"note: {path}: bench '{bench}' is not gated, skipping")
            continue
        base = baseline_benches.get(bench)
        if base is None:
            print(f"error: baseline has no entry for bench '{bench}'",
                  file=sys.stderr)
            return 2
        base_warm = warm_times(base)
        for label, warm in sorted(warm_times(report).items()):
            if label not in base_warm:
                print(f"note: {bench}/{label}: new configuration, no baseline")
                continue
            ref = base_warm[label]
            delta = (warm - ref) / ref if ref > 0 else 0.0
            tag = "ok"
            if ref < args.min_seconds:
                tag = "noisy (below min-seconds, not gated)"
            elif delta > args.threshold:
                tag = "REGRESSION"
                failures.append((bench, label, ref, warm, delta))
            else:
                checked += 1
            print(f"{bench:18s} {label:24s} baseline {ref * 1e3:9.3f} ms  "
                  f"current {warm * 1e3:9.3f} ms  {delta * 100.0:+6.1f}%  "
                  f"{tag}")

    missing = [b for b in GATED_BENCHES if b not in seen_benches]
    if missing:
        print(f"warning: no current report supplied for: {', '.join(missing)}")

    if failures:
        print(f"\nFAIL: {len(failures)} warm host-time regression(s) above "
              f"{args.threshold * 100.0:.0f}%:", file=sys.stderr)
        for bench, label, ref, warm, delta in failures:
            print(f"  {bench}/{label}: {ref * 1e3:.3f} ms -> "
                  f"{warm * 1e3:.3f} ms ({delta * 100.0:+.1f}%)",
                  file=sys.stderr)
        return 1
    print(f"\nOK: {checked} gated configuration(s) within "
          f"{args.threshold * 100.0:.0f}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
