// Striping-engine microbenchmarks (paper §2).
//
// "The runtime is responsible for striping the data based on the model
// information specified in the glue-code." These google-benchmark cases
// measure plan construction and the pack/copy paths for the striping
// patterns the runtime executes: aligned row stripes (cheap, one
// segment), corner-turn redistribution (rows -> columns, many strided
// segments), and replication fan-out.
#include <benchmark/benchmark.h>

#include <complex>
#include <cstring>
#include <vector>

#include "runtime/striping.hpp"

namespace {

using namespace sage;
using runtime::StripeSpec;

StripeSpec make_spec(std::size_t n, model::Striping striping, int dim,
                     int threads) {
  StripeSpec spec;
  spec.dims = {n, n};
  spec.striping = striping;
  spec.stripe_dim = dim;
  spec.threads = threads;
  return spec;
}

void BM_PlanRowToRow(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  const auto src = make_spec(n, model::Striping::kStriped, 0, threads);
  const auto dst = make_spec(n, model::Striping::kStriped, 0, threads);
  for (auto _ : state) {
    benchmark::DoNotOptimize(runtime::build_transfer_plan(src, dst));
  }
}
BENCHMARK(BM_PlanRowToRow)->Args({1024, 4})->Args({1024, 8});

void BM_PlanCornerTurn(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  const auto src = make_spec(n, model::Striping::kStriped, 0, threads);
  const auto dst = make_spec(n, model::Striping::kStriped, 1, threads);
  for (auto _ : state) {
    benchmark::DoNotOptimize(runtime::build_transfer_plan(src, dst));
  }
}
BENCHMARK(BM_PlanCornerTurn)->Args({256, 4})->Args({1024, 4})->Args({1024, 8});

void BM_PackCornerTurnSegments(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  const auto src = make_spec(n, model::Striping::kStriped, 0, threads);
  const auto dst = make_spec(n, model::Striping::kStriped, 1, threads);
  const auto plan = runtime::build_transfer_plan(src, dst);
  constexpr std::size_t kElem = sizeof(std::complex<float>);
  std::vector<std::byte> src_buf(src.elems_per_thread() * kElem);
  std::vector<std::byte> packed(src.elems_per_thread() * kElem);

  for (auto _ : state) {
    for (const runtime::ThreadPairTransfer& pair : plan) {
      if (pair.src_thread != 0) continue;
      std::size_t cursor = 0;
      for (const runtime::Segment& seg : pair.segments) {
        std::memcpy(packed.data() + cursor,
                    src_buf.data() + seg.src_offset * kElem,
                    seg.length * kElem);
        cursor += seg.length * kElem;
      }
      benchmark::DoNotOptimize(packed.data());
    }
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(src.elems_per_thread() * kElem));
}
BENCHMARK(BM_PackCornerTurnSegments)->Args({256, 4})->Args({1024, 8});

void BM_PlanReplicatedFanout(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto src = make_spec(n, model::Striping::kReplicated, 0, 1);
  const auto dst = make_spec(n, model::Striping::kStriped, 0,
                             static_cast<int>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(runtime::build_transfer_plan(src, dst));
  }
}
BENCHMARK(BM_PlanReplicatedFanout)->Args({512, 8});

}  // namespace

BENCHMARK_MAIN();
