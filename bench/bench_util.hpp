// Shared helpers for the table-reproduction benchmark binaries.
//
// Every binary prints (a) a human-readable table in the layout of the
// paper's Table 1.0 and (b) machine-readable CSV lines prefixed "csv,".
// Environment knobs keep default runtimes short while allowing full
// paper-scale runs:
//   SAGE_BENCH_RUNS   -- measurement repetitions   (paper: 10, default 2)
//   SAGE_BENCH_ITERS  -- iterations per repetition (paper: 100, default 3)
//   SAGE_BENCH_SIZES  -- comma list of matrix sizes (default 256,512,1024)
//   SAGE_BENCH_NODES  -- comma list of node counts  (default 4,8)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "support/strings.hpp"

namespace sage::bench {

struct BenchEnv {
  int runs = 2;
  int iterations = 3;
  std::vector<std::size_t> sizes{256, 512, 1024};
  std::vector<int> nodes{4, 8};
};

inline BenchEnv bench_env() {
  BenchEnv env;
  if (const char* v = std::getenv("SAGE_BENCH_RUNS")) {
    env.runs = std::max(1, static_cast<int>(support::parse_int(v)));
  }
  if (const char* v = std::getenv("SAGE_BENCH_ITERS")) {
    env.iterations = std::max(1, static_cast<int>(support::parse_int(v)));
  }
  if (const char* v = std::getenv("SAGE_BENCH_SIZES")) {
    env.sizes.clear();
    for (const auto& part : support::split(v, ',')) {
      env.sizes.push_back(static_cast<std::size_t>(support::parse_int(part)));
    }
  }
  if (const char* v = std::getenv("SAGE_BENCH_NODES")) {
    env.nodes.clear();
    for (const auto& part : support::split(v, ',')) {
      env.nodes.push_back(static_cast<int>(support::parse_int(part)));
    }
  }
  return env;
}

/// One row of a hand-coded vs auto-generated comparison table.
struct ComparisonRow {
  std::string application;
  std::size_t size = 0;
  int nodes = 0;
  double hand_seconds = 0.0;   // mean latency, virtual seconds
  double sage_seconds = 0.0;

  /// The paper's "% of Hand Coded" column: hand/sage * 100 (100 means
  /// parity; lower means the generated code is slower).
  double percent_of_hand() const {
    return sage_seconds > 0 ? hand_seconds / sage_seconds * 100.0 : 0.0;
  }
};

inline void print_table(const std::string& title,
                        const std::vector<ComparisonRow>& rows) {
  std::printf("\n%s\n", title.c_str());
  std::printf("%-6s %-14s %-10s %14s %14s %12s\n", "Nodes", "Application",
              "Array", "HandCoded(ms)", "SAGE(ms)", "%ofHand");
  double percent_sum = 0.0;
  for (const ComparisonRow& row : rows) {
    std::printf("%-6d %-14s %zux%-7zu %14.3f %14.3f %11.1f%%\n", row.nodes,
                row.application.c_str(), row.size, row.size,
                row.hand_seconds * 1e3, row.sage_seconds * 1e3,
                row.percent_of_hand());
    percent_sum += row.percent_of_hand();
  }
  if (!rows.empty()) {
    std::printf("%-54s average: %11.1f%%\n", "",
                percent_sum / static_cast<double>(rows.size()));
  }
  for (const ComparisonRow& row : rows) {
    std::printf("csv,%s,%zu,%d,%.6f,%.6f,%.2f\n", row.application.c_str(),
                row.size, row.nodes, row.hand_seconds, row.sage_seconds,
                row.percent_of_hand());
  }
}

/// Host-side (wall-clock) cost of repeated runs: `cold` is the first
/// run on a fresh session (includes machine spawn via construction cost
/// when measured around session creation), `warm` the mean of the
/// remaining runs on the same session. Virtual-time results are
/// unaffected; this measures the harness itself.
struct HostCost {
  std::string label;
  double cold_seconds = 0.0;
  double warm_seconds = 0.0;
  int warm_runs = 0;

  double speedup() const {
    return warm_seconds > 0.0 ? cold_seconds / warm_seconds : 0.0;
  }
};

/// Folds a per-run host_seconds series (first = cold) into a HostCost.
inline HostCost host_cost(const std::string& label,
                          const std::vector<double>& host_seconds) {
  HostCost cost;
  cost.label = label;
  if (host_seconds.empty()) return cost;
  cost.cold_seconds = host_seconds.front();
  for (std::size_t i = 1; i < host_seconds.size(); ++i) {
    cost.warm_seconds += host_seconds[i];
    ++cost.warm_runs;
  }
  if (cost.warm_runs > 0) {
    cost.warm_seconds /= static_cast<double>(cost.warm_runs);
  }
  return cost;
}

inline void print_host_cost(const HostCost& cost) {
  std::printf("host   %-22s cold %8.3f ms   warm %8.3f ms x%-3d %6.1fx\n",
              cost.label.c_str(), cost.cold_seconds * 1e3,
              cost.warm_seconds * 1e3, cost.warm_runs, cost.speedup());
  std::printf("csv,host,%s,%.6f,%.6f,%d,%.2f\n", cost.label.c_str(),
              cost.cold_seconds, cost.warm_seconds, cost.warm_runs,
              cost.speedup());
}

/// Machine-readable results for one benchmark binary, written by
/// `--json <file>` and consumed by scripts/check_bench_regression.py,
/// which gates warm host-time regressions against the committed
/// BENCH_baseline.json.
struct JsonReport {
  std::string bench;  // binary name, e.g. "table1_fft2d"
  int runs = 0;
  int iterations = 0;
  std::vector<HostCost> hosts;
  std::vector<ComparisonRow> rows;
};

/// The file following a `--json` flag, or nullptr when absent.
inline const char* json_path(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") return argv[i + 1];
  }
  return nullptr;
}

/// Writes the report as JSON. Returns false (with a note on stderr) when
/// the file cannot be opened; benches treat that as a fatal error so CI
/// never silently skips the gate.
inline bool write_json(const JsonReport& report, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot open %s for writing\n", path);
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"runs\": %d,\n"
               "  \"iterations\": %d,\n  \"host\": [\n",
               report.bench.c_str(), report.runs, report.iterations);
  for (std::size_t i = 0; i < report.hosts.size(); ++i) {
    const HostCost& h = report.hosts[i];
    std::fprintf(f,
                 "    {\"label\": \"%s\", \"cold_seconds\": %.6f, "
                 "\"warm_seconds\": %.6f, \"warm_runs\": %d}%s\n",
                 h.label.c_str(), h.cold_seconds, h.warm_seconds, h.warm_runs,
                 i + 1 < report.hosts.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"comparison\": [\n");
  for (std::size_t i = 0; i < report.rows.size(); ++i) {
    const ComparisonRow& r = report.rows[i];
    std::fprintf(f,
                 "    {\"application\": \"%s\", \"size\": %zu, \"nodes\": %d, "
                 "\"hand_seconds\": %.6f, \"sage_seconds\": %.6f}%s\n",
                 r.application.c_str(), r.size, r.nodes, r.hand_seconds,
                 r.sage_seconds, i + 1 < report.rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace sage::bench
