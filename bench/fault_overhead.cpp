// Fault-injection overhead and recovery latency.
//
// Three questions this bench answers for docs/RUNTIME.md and
// EXPERIMENTS.md:
//   1. What does an *inactive* FaultPlan cost? (contract: nothing --
//      the run takes the exact unfaulted code path)
//   2. What does *fault-ready* mode cost when no fault fires? An
//      active plan reroutes every transfer through framed
//      send_reliable (16-byte header + FNV-1a checksum both ends),
//      so this isolates the price of being recoverable.
//   3. What does recovery cost? Session::recover() host time for a
//      dead-node remap, and the virtual-time latency of the degraded
//      run against the full-machine baseline.
#include <chrono>
#include <cstdio>
#include <memory>

#include "apps/benchmarks.hpp"
#include "core/project.hpp"
#include "net/fault.hpp"

namespace {

using namespace sage;

struct Sample {
  double latency_ms = 0.0;  // mean virtual per-iteration latency
  double host_ms = 0.0;     // mean host wall-clock per run
};

Sample measure(runtime::Session& session, int runs) {
  Sample sample;
  int latencies = 0;
  for (int r = 0; r < runs; ++r) {
    const runtime::RunStats stats = session.run();
    sample.host_ms += stats.host_seconds * 1e3 / runs;
    for (double lat : stats.latencies) {
      sample.latency_ms += lat * 1e3;
      ++latencies;
    }
  }
  sample.latency_ms /= latencies;
  return sample;
}

Sample measure_config(std::size_t n, int nodes,
                      std::shared_ptr<const net::FaultPlan> plan, int runs) {
  core::Project project(apps::make_cornerturn_workspace(n, nodes));
  runtime::ExecuteOptions options;
  options.iterations = 4;
  options.collect_trace = false;
  options.fault_plan = std::move(plan);
  auto session = project.open_session(options);
  (void)session->run();  // warm-up: thread spawn + first-touch
  return measure(*session, runs);
}

}  // namespace

int main() {
  constexpr int kRuns = 10;
  std::printf("Fault-path overhead -- Distributed Corner Turn, 4 nodes\n");
  std::printf("baseline: no plan; inactive: empty plan attached;\n");
  std::printf("armed: active plan, zero fault probability (framed\n");
  std::printf("transfers, no faults fire); chaos: 5%% drop + 5%% corrupt.\n\n");
  std::printf("%-8s %14s %12s %14s %12s\n", "Array", "Mode", "Lat(ms)",
              "vs base", "Host(ms)");

  auto armed_plan = [] {
    auto plan = std::make_shared<net::FaultPlan>();
    net::LinkFaultRule rule;
    rule.kind = net::FaultKind::kDrop;
    rule.probability = 0.0;
    plan->link_rules.push_back(rule);
    return plan;
  };
  auto chaos_plan = [] {
    auto plan = std::make_shared<net::FaultPlan>();
    net::LinkFaultRule drop;
    drop.kind = net::FaultKind::kDrop;
    drop.probability = 0.05;
    plan->link_rules.push_back(drop);
    net::LinkFaultRule corrupt;
    corrupt.kind = net::FaultKind::kCorrupt;
    corrupt.probability = 0.05;
    corrupt.corrupt_bytes = 4;
    plan->link_rules.push_back(corrupt);
    return plan;
  };

  for (const std::size_t n : {256, 512}) {
    const Sample base = measure_config(n, 4, nullptr, kRuns);
    const Sample inactive =
        measure_config(n, 4, std::make_shared<const net::FaultPlan>(), kRuns);
    const Sample armed = measure_config(n, 4, armed_plan(), kRuns);
    const Sample chaos = measure_config(n, 4, chaos_plan(), kRuns);

    const char* label[] = {"baseline", "inactive-plan", "armed", "chaos"};
    const Sample* samples[] = {&base, &inactive, &armed, &chaos};
    for (int i = 0; i < 4; ++i) {
      std::printf("%-8zu %14s %12.3f %+13.1f%% %12.3f\n", n, label[i],
                  samples[i]->latency_ms,
                  (samples[i]->latency_ms / base.latency_ms - 1.0) * 100.0,
                  samples[i]->host_ms);
    }
    std::printf("\n");
  }

  // Recovery: host cost of the in-session remap and the degraded run's
  // virtual latency against the 4-node baseline.
  std::printf("Recovery -- kill node 3 of 4, corner turn 512^2\n");
  const Sample base = measure_config(512, 4, nullptr, kRuns);
  core::Project project(apps::make_cornerturn_workspace(512, 4));
  runtime::ExecuteOptions options;
  options.iterations = 4;
  options.collect_trace = false;
  auto session = project.open_session(options);
  (void)session->run();

  const auto t0 = std::chrono::steady_clock::now();
  const runtime::RecoveryReport report = session->recover({3});
  const auto t1 = std::chrono::steady_clock::now();
  const double recover_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  const Sample degraded = measure(*session, kRuns);

  std::printf("recover() host time: %.3f ms (%d threads moved)\n", recover_ms,
              report.moved_threads);
  std::printf("degraded latency: %.3f ms vs %.3f ms baseline (%+.1f%%)\n",
              degraded.latency_ms, base.latency_ms,
              (degraded.latency_ms / base.latency_ms - 1.0) * 100.0);
  return 0;
}
