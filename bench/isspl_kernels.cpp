// ISSPL leaf-kernel microbenchmarks: the compute primitives both the
// hand-coded and generated benchmark versions spend their time in.
#include <benchmark/benchmark.h>

#include <complex>
#include <vector>

#include "isspl/fft.hpp"
#include "isspl/transpose.hpp"
#include "isspl/vector_ops.hpp"

namespace {

using namespace sage;
using Complex = std::complex<float>;

void BM_Fft1d(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  isspl::FftPlan plan(n, isspl::FftDirection::kForward);
  std::vector<Complex> data(n, Complex(1.0f, -1.0f));
  for (auto _ : state) {
    plan.execute(data);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Fft1d)->Arg(256)->Arg(1024)->Arg(4096);

void BM_Fft1dRadix(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto algorithm = static_cast<isspl::FftAlgorithm>(state.range(1));
  isspl::FftPlan plan(n, isspl::FftDirection::kForward, algorithm);
  std::vector<Complex> data(n, Complex(1.0f, -1.0f));
  for (auto _ : state) {
    plan.execute(data);
    benchmark::DoNotOptimize(data.data());
  }
}
BENCHMARK(BM_Fft1dRadix)
    ->Args({1024, static_cast<int>(isspl::FftAlgorithm::kRadix2)})
    ->Args({1024, static_cast<int>(isspl::FftAlgorithm::kRadix4)})
    ->Args({4096, static_cast<int>(isspl::FftAlgorithm::kRadix2)})
    ->Args({4096, static_cast<int>(isspl::FftAlgorithm::kRadix4)});

void BM_FftRows(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t rows = 64;
  isspl::FftPlan plan(n, isspl::FftDirection::kForward);
  std::vector<Complex> data(rows * n, Complex(0.5f, 0.25f));
  for (auto _ : state) {
    plan.execute_rows(data, rows);
    benchmark::DoNotOptimize(data.data());
  }
}
BENCHMARK(BM_FftRows)->Arg(256)->Arg(1024);

void BM_Transpose(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<Complex> in(n * n, Complex(1.0f, 0.0f));
  std::vector<Complex> out(n * n);
  for (auto _ : state) {
    isspl::transpose(std::span<const Complex>(in), std::span<Complex>(out), n,
                     n);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n * sizeof(Complex)));
}
BENCHMARK(BM_Transpose)->Arg(256)->Arg(1024);

void BM_PackColumnBlock(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t rows = n / 8;
  const std::size_t ncols = n / 8;
  std::vector<Complex> matrix(rows * n);
  std::vector<Complex> block(rows * ncols);
  for (auto _ : state) {
    isspl::pack_column_block(std::span<const Complex>(matrix), rows, n, 0,
                             ncols, std::span<Complex>(block));
    benchmark::DoNotOptimize(block.data());
  }
}
BENCHMARK(BM_PackColumnBlock)->Arg(1024);

void BM_Magnitude(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<Complex> in(n, Complex(3.0f, 4.0f));
  std::vector<float> out(n);
  for (auto _ : state) {
    isspl::vmag(in, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_Magnitude)->Arg(1 << 16);

}  // namespace

BENCHMARK_MAIN();
