// Transport-backend overhead: what does moving real bytes cost, per
// run, relative to the historical in-process fabric?
//
// One warm session per {configuration x backend}; the first run is the
// cold column (machine spawn, and for shmem/tcp the fork/listener
// setup), the mean of the rest is the warm column. Virtual-time results
// are identical across backends by construction (the fabric resolves
// arrival times and fault verdicts before the transport moves a byte)
// -- the bench asserts that -- so host time is the only axis.
//
// The regression gate (scripts/check_bench_regression.py) pins the
// inproc labels: the transport seam must not tax the default path. The
// shmem/tcp labels are reported for tracking but their baselines are
// machine-sensitive; keep them visible, gate them only once stable.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "apps/benchmarks.hpp"
#include "bench_util.hpp"
#include "core/project.hpp"
#include "net/transport.hpp"
#include "runtime/session.hpp"

namespace {

using namespace sage;

std::unique_ptr<model::Workspace> make_workspace(const std::string& app,
                                                 std::size_t n, int nodes) {
  return app == "fft2d" ? apps::make_fft2d_workspace(n, nodes)
                        : apps::make_cornerturn_workspace(n, nodes);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchEnv env = bench::bench_env();
  const int runs = env.runs + 1;  // first = cold column

  struct Config {
    std::string app;
    std::size_t n = 0;
    int nodes = 0;
  };
  const std::vector<Config> configs = {
      {"cornerturn", 256, 4},
      {"fft2d", 256, 4},
  };

  bench::JsonReport report;
  report.bench = "transport_overhead";
  report.runs = env.runs;
  report.iterations = env.iterations;

  std::printf("transport_overhead: %d runs per backend (first = cold),"
              " %d iterations per run\n",
              runs, env.iterations);
  for (const Config& config : configs) {
    const std::string tag = config.app + "-" + std::to_string(config.n) +
                            "x" + std::to_string(config.nodes);
    std::map<std::string, std::vector<double>> results_by_backend;
    for (const net::TransportKind kind :
         {net::TransportKind::kInProc, net::TransportKind::kShmem,
          net::TransportKind::kTcp}) {
      core::Project project(
          make_workspace(config.app, config.n, config.nodes));
      runtime::ExecuteOptions options;
      options.iterations = env.iterations;
      options.collect_trace = false;
      options.transport.kind = kind;

      auto session = project.open_session(options);
      std::vector<double> seconds;
      seconds.reserve(static_cast<std::size_t>(runs));
      std::map<std::string, std::vector<double>> results;
      for (int r = 0; r < runs; ++r) {
        const runtime::RunStats stats = session->run();
        seconds.push_back(stats.host_seconds);
        results = stats.results;
      }

      // Bit-identity sanity: the mechanism must not change the answer.
      const std::string backend = net::to_string(kind);
      if (results_by_backend.empty()) {
        results_by_backend = results;
      } else if (results != results_by_backend) {
        std::fprintf(stderr,
                     "transport_overhead: %s results diverge on %s\n",
                     tag.c_str(), backend.c_str());
        return 1;
      }

      const bench::HostCost cost =
          bench::host_cost(tag + "-" + backend, seconds);
      bench::print_host_cost(cost);
      report.hosts.push_back(cost);
    }
  }

  if (const char* path = bench::json_path(argc, argv)) {
    if (!bench::write_json(report, path)) return 1;
    std::printf("wrote %s\n", path);
  }
  return 0;
}
