// Online-tuning convergence (the ISSUE 9 headline number).
//
// Starts the deliberately skewed tuning workspace (apps::
// make_tuning_workspace: two fast processors idle, every function piled
// onto two 16x-slower ones), lets runtime::Tuner run its observe ->
// calibrate -> re-map -> hot-swap loop for a fixed number of steps, and
// compares the tuned virtual makespan against the best-known mapping --
// a big-budget GA run on the tuner's own calibrated problem, realized
// on the same warm session through remapped_config + swap_program.
//
// Headline gate: the tuner must recover >= 90% of best-known-mapping
// throughput from a bad start; the bench exits 1 otherwise. Measured
// makespans inherit wall-clock noise (the emulator charges measured
// host CPU time x cpu_scale), so the pass/fail recovery is scored on
// the calibrated cost model -- best_objective / tuned_objective with
// both placements evaluated on the SAME calibrated problem, which is
// exactly 1.0 whenever the tuner converged to the best-known placement
// regardless of timing noise -- and the measured makespan recovery
// (min over runs) is printed alongside as the noisy corroboration.
// The same ratio, inverted (tuned/best, lower is better), is the label
// "tune/objective_ratio" gated by check_bench_regression.py.
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "apps/pipelines.hpp"
#include "atot/mapper.hpp"
#include "bench_util.hpp"
#include "core/project.hpp"
#include "runtime/compiler.hpp"
#include "runtime/session.hpp"
#include "runtime/tuner.hpp"

namespace {

using namespace sage;

constexpr double kMinRecovery = 0.90;

/// Min over runs: the noise-robust estimator for the timing side
/// (makespan noise is one-sided -- scheduling jitter only adds time).
double min_makespan(runtime::Session& session, int runs) {
  double best = 0.0;
  for (int r = 0; r < runs; ++r) {
    const double m = session.run().makespan;
    if (r == 0 || m < best) best = m;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchEnv env = bench::bench_env();
  const std::size_t n = 128;
  const int stages = 4;
  const int tune_steps = 6;

  core::Project project(apps::make_tuning_workspace(n, stages));
  runtime::ExecuteOptions options;
  options.iterations = env.iterations;
  options.tune.enabled = true;
  options.tune.hysteresis = 0.02;

  std::unique_ptr<runtime::Session> session = project.open_session(options);
  runtime::Tuner tuner(*session, project.registry(), options.tune);
  const int nodes = session->program().config.nodes;

  std::printf("Online AToT convergence: bad start -> tuner -> best-known\n");
  std::printf("(%zux%zu chain, %d stages, %d nodes, %d iters/run, "
              "%d runs/point)\n\n",
              n, n, stages, nodes, env.iterations, env.runs);

  // The hole we start in: everything on the slow processors. These runs
  // double as the tuner's first measurement window.
  double bad = 0.0;
  for (int r = 0; r < env.runs; ++r) {
    const runtime::RunStats stats = session->run();
    if (r == 0 || stats.makespan < bad) bad = stats.makespan;
    tuner.observe(stats);
  }
  std::printf("bad start: makespan %10.3f ms (virtual)\n\n", bad * 1e3);

  std::printf("%-5s %-6s %12s %14s %8s\n", "step", "outcome", "pred.gain",
              "makespan(ms)", "moved");
  double swap_host = 0.0;
  for (int s = 0; s < tune_steps; ++s) {
    const runtime::TuneStepReport rep = tuner.step();
    swap_host += rep.swap_seconds;
    const runtime::RunStats stats = session->run();
    tuner.observe(stats);
    std::printf("%-5d %-6s %11.1f%% %14.3f %8d\n", rep.step,
                rep.outcome.c_str(), rep.predicted_gain_ratio * 100.0,
                stats.makespan * 1e3, rep.moved_threads);
    std::printf("csv,tune_step,%d,%s,%.6f,%.6f,%d\n", rep.step,
                rep.outcome.c_str(), rep.predicted_gain_ratio, stats.makespan,
                rep.moved_threads);
  }
  const double tuned = min_makespan(*session, env.runs);

  // Best-known mapping: a big-budget GA on the tuner's calibrated
  // problem, seeded with the tuner's final incumbent (elitism: never
  // worse than what the tuner found), hot-swapped onto the same warm
  // session so both makespans come from identical machinery.
  atot::GeneticOptions big;
  big.population = 96;
  big.generations = 300;
  big.stall_generations = 60;
  big.seed = 0xBE57BE57u;
  big.seeds.push_back(tuner.incumbent());
  const atot::GeneticResult best_map =
      atot::genetic_mapping(tuner.problem(), big);
  const double tuned_objective =
      atot::evaluate(tuner.problem(), tuner.incumbent()).objective;
  const double best_objective = best_map.cost.objective;
  session->swap_program(runtime::compile_or_load(
      runtime::remapped_config(session->program(), best_map.best),
      project.registry(), options.plan_cache_dir));
  const double best = min_makespan(*session, env.runs);

  const double measured_recovery = tuned > 0.0 ? best / tuned : 0.0;
  const double recovery =
      tuned_objective > 0.0 ? best_objective / tuned_objective : 0.0;
  std::printf("\ntuned:      makespan %10.3f ms  (%.2fx over bad start, "
              "%d swaps, %.3f ms host spent swapping)\n",
              tuned * 1e3, tuned > 0.0 ? bad / tuned : 0.0, tuner.swaps(),
              swap_host * 1e3);
  std::printf("best-known: makespan %10.3f ms  (GA pop %d, %d generations)\n",
              best * 1e3, big.population, best_map.generations_run);
  std::printf("recovery:   %.1f%% of best-known on the calibrated cost model "
              "(gate: >= %.0f%%), %.1f%% measured\n",
              recovery * 100.0, kMinRecovery * 100.0,
              measured_recovery * 100.0);
  std::printf("csv,tune_convergence,%zu,%d,%.6f,%.6f,%.6f,%.4f,%.4f\n", n,
              nodes, bad, tuned, best, recovery, measured_recovery);

  bench::JsonReport report;
  report.bench = "tune_convergence";
  report.runs = env.runs;
  report.iterations = env.iterations;
  // Quality ratio encoded as a host cost so the regression gate watches
  // it: warm = tuned_objective/best_objective on the same calibrated
  // problem (1.0 = the tuner found the best-known placement; immune to
  // timing noise since both assignments are scored on one problem
  // instance), cold = measured bad/best makespan ratio (how deep the
  // starting hole was -- informational, noisy, not compared by the
  // gate since cold times are never gated).
  bench::HostCost ratio;
  ratio.label = "tune/objective_ratio";
  ratio.cold_seconds = best > 0.0 ? bad / best : 0.0;
  ratio.warm_seconds =
      best_objective > 0.0 ? tuned_objective / best_objective : 0.0;
  ratio.warm_runs = env.runs;
  report.hosts.push_back(ratio);
  bench::print_host_cost(ratio);

  bench::ComparisonRow row;
  row.application = "tuning_chain";
  row.size = n;
  row.nodes = nodes;
  row.hand_seconds = best;   // best-known plays the "hand-coded" role
  row.sage_seconds = tuned;  // the online tuner's result
  report.rows.push_back(row);

  if (const char* path = bench::json_path(argc, argv)) {
    if (!bench::write_json(report, path)) return 2;
  }

  if (recovery < kMinRecovery) {
    std::fprintf(stderr,
                 "FAIL: tuner recovered only %.1f%% of best-known "
                 "throughput (< %.0f%%)\n",
                 recovery * 100.0, kMinRecovery * 100.0);
    return 1;
  }
  std::printf("\nOK: tuner within %.0f%% of best-known mapping\n",
              kMinRecovery * 100.0);
  return 0;
}
