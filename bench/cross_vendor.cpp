// Cross-vendor sweep (paper §3.1/§3.2).
//
// MITRE measured the benchmarks on Mercury, CSPI, SIGI and SKY
// platforms. We model each vendor as a fabric/CPU preset and re-run the
// Table-1 comparison on every platform: absolute times differ per
// vendor, while the SAGE-vs-hand-coded ratio stays in the same band --
// the portability claim of the paper ("the application developed is
// portable to other SAGE supported hardware platforms; the designer
// simply needs to re-generate the glue code").
#include <cstdio>
#include <vector>

#include "apps/benchmarks.hpp"
#include "apps/handcoded.hpp"
#include "bench_util.hpp"
#include "core/platforms.hpp"
#include "core/project.hpp"
#include "model/hardware.hpp"

namespace {

using namespace sage;

double mean(const std::vector<double>& xs) {
  double total = 0.0;
  for (double x : xs) total += x;
  return xs.empty() ? 0.0 : total / static_cast<double>(xs.size());
}

}  // namespace

int main() {
  const bench::BenchEnv env = bench::bench_env();
  const std::size_t size = env.sizes.back();
  const int nodes = env.nodes.back();

  std::printf("Cross-vendor sweep -- 2D FFT %zux%zu on %d nodes\n\n", size,
              size, nodes);
  std::printf("%-10s %14s %14s %12s\n", "Vendor", "HandCoded(ms)", "SAGE(ms)",
              "%ofHand");

  for (const core::VendorPlatform& vendor : core::vendor_platforms()) {
    // Hand-coded baseline on the vendor's fabric/CPU model.
    apps::HandcodedOptions hand_options;
    hand_options.iterations = env.iterations;
    hand_options.cpu_scale = vendor.cpu_scale;
    if (vendor.key == "mercury") {
      hand_options.fabric = net::raceway_fabric();
    } else if (vendor.key == "sky") {
      hand_options.fabric = net::sky_fabric();
    } else if (vendor.key == "sigi") {
      hand_options.fabric = net::sigi_fabric();
    }
    const auto hand = apps::run_fft2d_handcoded(size, nodes, hand_options);

    // SAGE version: the same design, hardware re-targeted, glue
    // regenerated.
    auto workspace = apps::make_fft2d_workspace(size, nodes);
    core::retarget_hardware(workspace->hardware(), vendor.key);
    core::Project project(std::move(workspace));
    runtime::ExecuteOptions options;
    options.iterations = env.iterations;
    options.collect_trace = false;
    auto session = project.open_session(options);
    const runtime::RunStats stats = session->run();

    const double hand_s = mean(hand.latencies);
    const double sage_s = mean(stats.latencies);
    std::printf("%-10s %14.3f %14.3f %11.1f%%\n", vendor.key.c_str(),
                hand_s * 1e3, sage_s * 1e3,
                sage_s > 0 ? hand_s / sage_s * 100.0 : 0.0);
    std::printf("csv,vendor,%s,%zu,%d,%.6f,%.6f\n", vendor.key.c_str(), size,
                nodes, hand_s, sage_s);
  }
  return 0;
}
