// Strong scaling of the Parallel 2D FFT: fixed problem size, growing
// node counts -- the speedup/efficiency curve embedded-HPC evaluations
// of the paper's era reported alongside absolute times. Both the
// hand-coded and the SAGE-generated versions are swept so the overhead
// trend across scale is visible in one table.
#include <cstdio>
#include <vector>

#include "apps/benchmarks.hpp"
#include "apps/handcoded.hpp"
#include "bench_util.hpp"
#include "core/project.hpp"
#include "support/clock.hpp"

namespace {

using namespace sage;

double mean(const std::vector<double>& xs) {
  double total = 0.0;
  for (double x : xs) total += x;
  return xs.empty() ? 0.0 : total / static_cast<double>(xs.size());
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchEnv env = bench::bench_env();
  const std::size_t size = env.sizes.back();

  std::printf("Strong scaling -- 2D FFT %zux%zu (virtual time)\n\n", size,
              size);
  std::printf("%-6s %12s %9s %7s %12s %9s %7s %9s\n", "Nodes", "hand(ms)",
              "speedup", "eff", "sage(ms)", "speedup", "eff", "%ofHand");

  std::vector<bench::ComparisonRow> rows;
  std::vector<bench::HostCost> hosts;
  double hand_base = 0.0;
  double sage_base = 0.0;
  for (int nodes : {1, 2, 4, 8}) {
    if (size % static_cast<std::size_t>(nodes) != 0) continue;

    apps::HandcodedOptions hand_options;
    hand_options.iterations = env.iterations;
    const double hand =
        mean(apps::run_fft2d_handcoded(size, nodes, hand_options).latencies);

    core::Project project(apps::make_fft2d_workspace(size, nodes));
    runtime::ExecuteOptions options;
    options.iterations = env.iterations;
    options.collect_trace = false;
    std::vector<double> host_seconds;
    std::vector<double> sage_lat;
    const double cold_start = support::wall_seconds();
    auto session = project.open_session(options);
    session->run();  // cold run: construction + first dispatch
    host_seconds.push_back(support::wall_seconds() - cold_start);
    for (int run = 1; run < std::max(2, env.runs); ++run) {
      const runtime::RunStats stats = session->run();
      for (double lat : stats.latencies) sage_lat.push_back(lat);
      host_seconds.push_back(stats.host_seconds);
    }
    const double sage = mean(sage_lat);
    hosts.push_back(bench::host_cost(
        "scaling/" + std::to_string(size) + "x" + std::to_string(nodes) + "n",
        host_seconds));

    if (nodes == 1) {
      hand_base = hand;
      sage_base = sage;
    }
    const double hand_speedup = hand > 0 ? hand_base / hand : 0.0;
    const double sage_speedup = sage > 0 ? sage_base / sage : 0.0;
    std::printf("%-6d %12.3f %8.2fx %6.0f%% %12.3f %8.2fx %6.0f%% %8.1f%%\n",
                nodes, hand * 1e3, hand_speedup,
                hand_speedup / nodes * 100.0, sage * 1e3, sage_speedup,
                sage_speedup / nodes * 100.0,
                sage > 0 ? hand / sage * 100.0 : 0.0);
    std::printf("csv,scaling,%zu,%d,%.6f,%.6f\n", size, nodes, hand, sage);
    bench::ComparisonRow row;
    row.application = "scaling";
    row.size = size;
    row.nodes = nodes;
    row.hand_seconds = hand;
    row.sage_seconds = sage;
    rows.push_back(row);
  }
  std::printf("\n");
  for (const bench::HostCost& cost : hosts) bench::print_host_cost(cost);
  std::printf("\nSpeedups reflect two competing effects: per-node working\n"
              "sets shrinking into cache (helps) vs the all-to-all's\n"
              "per-message costs growing relative to per-node compute\n"
              "(hurts). The generated code's fixed overheads amortize less\n"
              "at scale, so the %%-of-hand column trends down with nodes.\n");
  if (const char* path = bench::json_path(argc, argv)) {
    bench::JsonReport report{"scaling", env.runs, env.iterations, hosts, rows};
    if (!bench::write_json(report, path)) return 1;
  }
  return 0;
}
