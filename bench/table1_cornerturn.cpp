// Table 1.0 (Corner Turn rows): hand-coded vs SAGE auto-generated
// Distributed Corner Turn on the emulated CSPI platform.
//
// The paper reports ~20-25% SAGE overhead here, with a noted extra
// penalty on the two-node configuration caused by the runtime's
// unique-logical-buffer policy (see bench/ablation_buffers.cpp for the
// isolated effect). We therefore include 2 nodes in the default sweep.
#include <cstdio>
#include <cstdlib>

#include "apps/benchmarks.hpp"
#include "apps/handcoded.hpp"
#include "bench_util.hpp"
#include "core/project.hpp"
#include "support/clock.hpp"

namespace {

using namespace sage;

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double total = 0.0;
  for (double x : xs) total += x;
  return total / static_cast<double>(xs.size());
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchEnv env = bench::bench_env();
  if (std::getenv("SAGE_BENCH_NODES") == nullptr) {
    env.nodes = {2, 4, 8};  // the paper discusses the 2-node anomaly
  }
  std::printf(
      "Table 1.0 reproduction -- Distributed Corner Turn, CSPI-like platform\n");
  std::printf("(runs=%d iterations/run=%d; paper used 10 runs x 100 iterations)\n",
              env.runs, env.iterations);

  std::vector<bench::ComparisonRow> rows;
  std::vector<bench::HostCost> hosts;
  for (int nodes : env.nodes) {
    for (std::size_t size : env.sizes) {
      if (size % static_cast<std::size_t>(nodes) != 0) continue;

      std::vector<double> hand_lat;
      for (int run = 0; run < env.runs; ++run) {
        apps::HandcodedOptions options;
        options.iterations = env.iterations;
        const apps::HandcodedResult result =
            apps::run_cornerturn_handcoded(size, nodes, options);
        for (double lat : result.latencies) hand_lat.push_back(lat);
      }

      // Cold includes session construction (machine spawn, buffer
      // allocation, plan building) -- the per-run cost before warm
      // sessions existed.
      core::Project project(apps::make_cornerturn_workspace(size, nodes));
      runtime::ExecuteOptions options;
      options.iterations = env.iterations;
      options.collect_trace = false;
      std::vector<double> sage_lat;
      std::vector<double> host_seconds;
      const double cold_start = support::wall_seconds();
      auto session = project.open_session(options);
      {
        const runtime::RunStats stats = session->run();
        for (double lat : stats.latencies) sage_lat.push_back(lat);
        host_seconds.push_back(support::wall_seconds() - cold_start);
      }
      for (int run = 1; run < env.runs; ++run) {
        const runtime::RunStats stats = session->run();
        for (double lat : stats.latencies) sage_lat.push_back(lat);
        host_seconds.push_back(stats.host_seconds);
      }
      hosts.push_back(bench::host_cost(
          "ct/" + std::to_string(size) + "x" + std::to_string(nodes) + "n",
          host_seconds));

      bench::ComparisonRow row;
      row.application = "Corner Turn";
      row.size = size;
      row.nodes = nodes;
      row.hand_seconds = mean(hand_lat);
      row.sage_seconds = mean(sage_lat);
      rows.push_back(row);
    }
  }

  bench::print_table(
      "Comparison of hand-coded and auto-generated code (Corner Turn)", rows);
  std::printf("\nWarm-session host cost (first run cold, rest warm)\n");
  for (const bench::HostCost& cost : hosts) bench::print_host_cost(cost);

  if (const char* path = bench::json_path(argc, argv)) {
    bench::JsonReport report{"table1_cornerturn", env.runs, env.iterations,
                             hosts, rows};
    if (!bench::write_json(report, path)) return 1;
  }
  return 0;
}
