// Cold-start benchmark: what does Session::create cost, and how much of
// it does the Compiler -> Program split give back?
//
// Three creation paths per configuration:
//   cold    -- Session::create from a GlueConfig, no plan cache: every
//              creation runs the full planner (the pre-split behaviour);
//   cache   -- Session::create with --plan-cache semantics: the first
//              creation compiles and stores, every later one
//              deserializes the content-addressed plan blob;
//   shared  -- Session::create from an already-compiled shared program:
//              the executor-only cost (machine spawn + buffer
//              allocation), i.e. the floor the cache path approaches.
//
// The HostCost convention matches the other benches: first creation is
// the cold column, the mean of the rest is the warm column. The warm
// `cache` time beating the warm `cold` time is the acceptance criterion
// the regression gate pins.
#include <filesystem>
#include <functional>
#include <memory>
#include <vector>

#include "apps/benchmarks.hpp"
#include "bench_util.hpp"
#include "core/project.hpp"
#include "runtime/compiler.hpp"
#include "runtime/session.hpp"
#include "support/clock.hpp"

namespace {

using namespace sage;

runtime::GlueConfig make_config(const std::string& app, std::size_t n,
                                int nodes) {
  std::unique_ptr<model::Workspace> ws =
      app == "fft2d" ? apps::make_fft2d_workspace(n, nodes)
                     : apps::make_cornerturn_workspace(n, nodes);
  core::Project project(std::move(ws));
  return project.generate().config;
}

/// Times `creations` Session constructions through `make` (which
/// returns a live session; destroyed -- machine joined -- inside the
/// timed region, matching what a serve loop pays per session slot).
bench::HostCost time_creations(const std::string& label, int creations,
                               const std::function<std::unique_ptr<
                                   runtime::Session>()>& make) {
  std::vector<double> seconds;
  seconds.reserve(static_cast<std::size_t>(creations));
  for (int i = 0; i < creations; ++i) {
    const double start = support::wall_seconds();
    std::unique_ptr<runtime::Session> session = make();
    session.reset();
    seconds.push_back(support::wall_seconds() - start);
  }
  return bench::host_cost(label, seconds);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchEnv env = bench::bench_env();
  const int creations = env.runs + 1;  // first = cold column
  const runtime::FunctionRegistry registry = runtime::standard_registry();

  const std::string cache_dir = "bench_plan_cache";

  struct Config {
    std::string app;
    std::size_t n = 0;
    int nodes = 0;
  };
  const std::vector<Config> configs = {
      {"cornerturn", 1024, 8},
      {"fft2d", 512, 4},
  };

  bench::JsonReport report;
  report.bench = "session_create";
  report.runs = env.runs;
  report.iterations = env.iterations;

  std::printf("session_create: %d creations per path (first = cold)\n",
              creations);
  for (const Config& config : configs) {
    const runtime::GlueConfig glue =
        make_config(config.app, config.n, config.nodes);
    const std::string tag = config.app + "-" + std::to_string(config.n) +
                            "x" + std::to_string(config.nodes);

    // Fresh cache per configuration: creation 0 misses + stores,
    // creations 1..N hit.
    std::filesystem::remove_all(cache_dir);

    runtime::ExecuteOptions cold_options;
    const bench::HostCost cold =
        time_creations(tag + "-cold", creations, [&] {
          return std::make_unique<runtime::Session>(glue, registry,
                                                    cold_options);
        });

    runtime::ExecuteOptions cache_options;
    cache_options.plan_cache_dir = cache_dir;
    const bench::HostCost cache =
        time_creations(tag + "-cache", creations, [&] {
          return std::make_unique<runtime::Session>(glue, registry,
                                                    cache_options);
        });

    const std::shared_ptr<const runtime::CompiledProgram> program =
        runtime::Compiler::compile(glue, registry);
    const bench::HostCost shared =
        time_creations(tag + "-shared", creations, [&] {
          return std::make_unique<runtime::Session>(program, registry,
                                                    runtime::ExecuteOptions{});
        });

    bench::print_host_cost(cold);
    bench::print_host_cost(cache);
    bench::print_host_cost(shared);
    report.hosts.push_back(cold);
    report.hosts.push_back(cache);
    report.hosts.push_back(shared);
  }
  std::filesystem::remove_all(cache_dir);

  if (const char* path = bench::json_path(argc, argv)) {
    if (!bench::write_json(report, path)) return 1;
    std::printf("wrote %s\n", path);
  }
  return 0;
}
