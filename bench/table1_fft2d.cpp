// Table 1.0 (2D FFT rows): hand-coded vs SAGE auto-generated Parallel
// 2D FFT on the emulated CSPI platform.
//
// The paper reports the SAGE-generated code executing at roughly 83%
// (17% overhead) of the hand-coded version across 4/8 nodes and
// 256/512/1024 arrays. Absolute times differ (our substrate is an
// emulated machine, not 200 MHz PowerPCs); the reproduction target is
// the ratio column and its trend across the sweep.
#include <cstdio>

#include "apps/benchmarks.hpp"
#include "apps/handcoded.hpp"
#include "bench_util.hpp"
#include "core/project.hpp"
#include "support/clock.hpp"

namespace {

using namespace sage;

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double total = 0.0;
  for (double x : xs) total += x;
  return total / static_cast<double>(xs.size());
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchEnv env = bench::bench_env();
  std::printf("Table 1.0 reproduction -- Parallel 2D FFT, CSPI-like platform\n");
  std::printf("(runs=%d iterations/run=%d; paper used 10 runs x 100 iterations)\n",
              env.runs, env.iterations);

  std::vector<bench::ComparisonRow> rows;
  std::vector<bench::HostCost> hosts;
  for (int nodes : env.nodes) {
    for (std::size_t size : env.sizes) {
      if (size % static_cast<std::size_t>(nodes) != 0) continue;

      // Hand-coded baseline: averaged latency over runs.
      std::vector<double> hand_lat;
      for (int run = 0; run < env.runs; ++run) {
        apps::HandcodedOptions options;
        options.iterations = env.iterations;
        const apps::HandcodedResult result =
            apps::run_fft2d_handcoded(size, nodes, options);
        for (double lat : result.latencies) hand_lat.push_back(lat);
      }

      // SAGE auto-generated version: one warm session serves all runs.
      // The cold figure includes session construction (machine spawn,
      // buffer allocation, plan building) -- the cost every run paid
      // before warm sessions existed.
      core::Project project(apps::make_fft2d_workspace(size, nodes));
      runtime::ExecuteOptions options;
      options.iterations = env.iterations;
      options.collect_trace = false;
      std::vector<double> sage_lat;
      std::vector<double> host_seconds;
      const double cold_start = support::wall_seconds();
      auto session = project.open_session(options);
      {
        const runtime::RunStats stats = session->run();
        for (double lat : stats.latencies) sage_lat.push_back(lat);
        host_seconds.push_back(support::wall_seconds() - cold_start);
      }
      for (int run = 1; run < env.runs; ++run) {
        const runtime::RunStats stats = session->run();
        for (double lat : stats.latencies) sage_lat.push_back(lat);
        host_seconds.push_back(stats.host_seconds);
      }
      hosts.push_back(bench::host_cost(
          "fft2d/" + std::to_string(size) + "x" + std::to_string(nodes) + "n",
          host_seconds));

      bench::ComparisonRow row;
      row.application = "2D FFT";
      row.size = size;
      row.nodes = nodes;
      row.hand_seconds = mean(hand_lat);
      row.sage_seconds = mean(sage_lat);
      rows.push_back(row);
    }
  }

  bench::print_table("Comparison of hand-coded and auto-generated code (2D FFT)",
                     rows);
  std::printf("\nWarm-session host cost (first run cold, rest warm)\n");
  for (const bench::HostCost& cost : hosts) bench::print_host_cost(cost);

  if (const char* path = bench::json_path(argc, argv)) {
    bench::JsonReport report{"table1_fft2d", env.runs, env.iterations, hosts,
                             rows};
    if (!bench::write_json(report, path)) return 1;
  }
  return 0;
}
