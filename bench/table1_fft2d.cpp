// Table 1.0 (2D FFT rows): hand-coded vs SAGE auto-generated Parallel
// 2D FFT on the emulated CSPI platform.
//
// The paper reports the SAGE-generated code executing at roughly 83%
// (17% overhead) of the hand-coded version across 4/8 nodes and
// 256/512/1024 arrays. Absolute times differ (our substrate is an
// emulated machine, not 200 MHz PowerPCs); the reproduction target is
// the ratio column and its trend across the sweep.
#include <cstdio>

#include "apps/benchmarks.hpp"
#include "apps/handcoded.hpp"
#include "bench_util.hpp"
#include "core/project.hpp"

namespace {

using namespace sage;

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double total = 0.0;
  for (double x : xs) total += x;
  return total / static_cast<double>(xs.size());
}

}  // namespace

int main() {
  const bench::BenchEnv env = bench::bench_env();
  std::printf("Table 1.0 reproduction -- Parallel 2D FFT, CSPI-like platform\n");
  std::printf("(runs=%d iterations/run=%d; paper used 10 runs x 100 iterations)\n",
              env.runs, env.iterations);

  std::vector<bench::ComparisonRow> rows;
  for (int nodes : env.nodes) {
    for (std::size_t size : env.sizes) {
      if (size % static_cast<std::size_t>(nodes) != 0) continue;

      // Hand-coded baseline: averaged latency over runs.
      std::vector<double> hand_lat;
      for (int run = 0; run < env.runs; ++run) {
        apps::HandcodedOptions options;
        options.iterations = env.iterations;
        const apps::HandcodedResult result =
            apps::run_fft2d_handcoded(size, nodes, options);
        for (double lat : result.latencies) hand_lat.push_back(lat);
      }

      // SAGE auto-generated version.
      core::Project project(apps::make_fft2d_workspace(size, nodes));
      std::vector<double> sage_lat;
      for (int run = 0; run < env.runs; ++run) {
        core::ExecuteOptions options;
        options.iterations = env.iterations;
        options.collect_trace = false;
        const runtime::RunStats stats = project.execute(options);
        for (double lat : stats.latencies) sage_lat.push_back(lat);
      }

      bench::ComparisonRow row;
      row.application = "2D FFT";
      row.size = size;
      row.nodes = nodes;
      row.hand_seconds = mean(hand_lat);
      row.sage_seconds = mean(sage_lat);
      rows.push_back(row);
    }
  }

  bench::print_table("Comparison of hand-coded and auto-generated code (2D FFT)",
                     rows);
  return 0;
}
