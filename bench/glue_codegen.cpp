// Glue-generation benchmark: what does the bytecode pipeline buy over
// the tree-walking interpreter, and what does chunk memoization buy on
// top?
//
// Three evaluation paths per workspace, each timed over runs+1 fresh
// interpreters (first = cold column):
//   tree    -- the original tree-walking evaluator re-reads and re-walks
//              the glue generator program every call;
//   vm      -- read -> compile -> execute per call (a caller-supplied
//              program's cost under the VM);
//   vm-memo -- execute a chunk compiled once per process, which is what
//              codegen::generate_glue does for the builtin generator.
//
// The regression gate pins the warm columns: the memoized VM path must
// stay at least as fast as the tree-walker.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "alter/compiler.hpp"
#include "alter/interp.hpp"
#include "apps/benchmarks.hpp"
#include "bench_util.hpp"
#include "codegen/generator_program.hpp"
#include "support/clock.hpp"

namespace {

using namespace sage;

/// Times `calls` evaluations of the glue generator program, each on a
/// fresh interpreter attached to `workspace` (matching generate_glue's
/// per-call interpreter lifetime). `evaluate` runs one evaluation.
template <typename Fn>
bench::HostCost time_calls(const std::string& label, int calls,
                           const Fn& evaluate) {
  std::vector<double> seconds;
  seconds.reserve(static_cast<std::size_t>(calls));
  for (int i = 0; i < calls; ++i) {
    const double start = support::wall_seconds();
    evaluate();
    seconds.push_back(support::wall_seconds() - start);
  }
  return bench::host_cost(label, seconds);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchEnv env = bench::bench_env();
  const int calls = env.runs + 1;  // first = cold column
  const std::string& program = codegen::glue_generator_source();

  struct Config {
    std::string app;
    std::unique_ptr<model::Workspace> workspace;
  };
  std::vector<Config> configs;
  configs.push_back({"fft2d", apps::make_fft2d_workspace(256, 4)});
  configs.push_back({"cornerturn", apps::make_cornerturn_workspace(256, 2)});

  bench::JsonReport report;
  report.bench = "glue_codegen";
  report.runs = env.runs;
  report.iterations = env.iterations;

  std::printf("glue_codegen: %d generator evaluations per path "
              "(first = cold)\n", calls);
  for (Config& config : configs) {
    model::ModelObject& root = config.workspace->root();

    const bench::HostCost tree =
        time_calls(config.app + "-tree", calls, [&] {
          alter::Interpreter interp(alter::Interpreter::Mode::kTreeWalk);
          interp.attach_model(root);
          interp.eval_string(program);
        });

    const bench::HostCost vm = time_calls(config.app + "-vm", calls, [&] {
      alter::Interpreter interp;
      interp.attach_model(root);
      interp.eval_string(program);  // read + compile + execute
    });

    const alter::ChunkPtr chunk =
        alter::compile_string(program, "glue-generator");
    const bench::HostCost memo =
        time_calls(config.app + "-vm-memo", calls, [&] {
          alter::Interpreter interp;
          interp.attach_model(root);
          interp.execute(chunk);  // compile amortised across the process
        });

    bench::print_host_cost(tree);
    bench::print_host_cost(vm);
    bench::print_host_cost(memo);
    report.hosts.push_back(tree);
    report.hosts.push_back(vm);
    report.hosts.push_back(memo);
  }

  if (const char* path = bench::json_path(argc, argv)) {
    if (!bench::write_json(report, path)) return 1;
    std::printf("wrote %s\n", path);
  }
  return 0;
}
