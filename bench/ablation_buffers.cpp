// Buffer-management ablation (paper §3.4 and Conclusions).
//
// The paper attributes the corner turn's extra overhead -- worst on the
// two-node configuration -- to the runtime assigning "unique logical
// buffers to the data per function which can cause extra data access
// times", and says work is underway to reach 90% of hand-coded
// performance. This bench isolates that design choice by running the
// corner turn under both buffer policies:
//   unique-per-function -- the shipped behaviour (every transfer stages
//                          through the logical buffer's own storage)
//   shared              -- the planned improvement (direct moves)
#include <cstdio>
#include <cstdlib>

#include "apps/benchmarks.hpp"
#include "apps/handcoded.hpp"
#include "bench_util.hpp"
#include "core/project.hpp"

namespace {

using namespace sage;

// One warm session serves both policies: the RunOverrides override swaps
// the buffer policy per run without rebuilding the machine.
double mean_latency(runtime::Session& session, runtime::BufferPolicy policy,
                    int runs) {
  runtime::RunOverrides request;
  request.buffer_policy = policy;
  double total = 0.0;
  int count = 0;
  for (int run = 0; run < runs; ++run) {
    for (double lat : session.run(request).latencies) {
      total += lat;
      ++count;
    }
  }
  return count > 0 ? total / count : 0.0;
}

}  // namespace

int main() {
  bench::BenchEnv env = bench::bench_env();
  if (std::getenv("SAGE_BENCH_NODES") == nullptr) {
    env.nodes = {2, 4, 8};
  }
  std::printf("Buffer-management ablation -- Distributed Corner Turn\n");
  std::printf("unique-per-function is the paper's shipped runtime;\n");
  std::printf("shared is the improvement its conclusions promise (~90%%).\n\n");
  std::printf("%-6s %-10s %12s %12s %12s %10s %10s\n", "Nodes", "Array",
              "Hand(ms)", "Unique(ms)", "Shared(ms)", "Uniq%", "Shared%");

  for (int nodes : env.nodes) {
    for (std::size_t size : env.sizes) {
      if (size % static_cast<std::size_t>(nodes) != 0) continue;

      apps::HandcodedOptions hand_options;
      hand_options.iterations = env.iterations;
      double hand = 0.0;
      for (int run = 0; run < env.runs; ++run) {
        const auto result =
            apps::run_cornerturn_handcoded(size, nodes, hand_options);
        for (double lat : result.latencies) hand += lat;
      }
      hand /= static_cast<double>(env.runs * env.iterations);

      core::Project project(apps::make_cornerturn_workspace(size, nodes));
      runtime::ExecuteOptions options;
      options.iterations = env.iterations;
      options.collect_trace = false;
      auto session = project.open_session(options);
      const double unique = mean_latency(
          *session, runtime::BufferPolicy::kUniquePerFunction, env.runs);
      const double shared =
          mean_latency(*session, runtime::BufferPolicy::kShared, env.runs);

      std::printf("%-6d %zux%-7zu %12.3f %12.3f %12.3f %9.1f%% %9.1f%%\n",
                  nodes, size, size, hand * 1e3, unique * 1e3, shared * 1e3,
                  unique > 0 ? hand / unique * 100.0 : 0.0,
                  shared > 0 ? hand / shared * 100.0 : 0.0);
      std::printf("csv,ablation,%zu,%d,%.6f,%.6f,%.6f\n", size, nodes, hand,
                  unique, shared);
    }
  }
  return 0;
}
