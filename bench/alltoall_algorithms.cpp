// Vendor alltoall comparison (paper §3.1).
//
// "The traditional MPI implementation have a built in function for
// performing the corner turn operation, namely the MPI_All_to_All
// function; each vendor implemented their own version tailored to their
// respective hardware for the most optimal performance." This bench
// compares the three minimpi alltoall algorithms on corner-turn-shaped
// exchanges.
#include <complex>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "mpi/alltoall.hpp"
#include "mpi/comm.hpp"
#include "net/machine.hpp"

namespace {

using namespace sage;
using Complex = std::complex<float>;

double measure(std::size_t n, int nodes, mpi::AlltoallAlgorithm algorithm,
               int iterations) {
  const std::size_t block = n / static_cast<std::size_t>(nodes);
  net::Machine machine(nodes, net::myrinet_fabric());
  std::vector<double> finish(static_cast<std::size_t>(nodes), 0.0);

  machine.run([&](net::NodeContext& node) {
    mpi::Communicator comm(node);
    std::vector<Complex> send(block * n), recv(block * n);
    for (std::size_t i = 0; i < send.size(); ++i) {
      send[i] = Complex(static_cast<float>(i), 0.0f);
    }
    for (int iter = 0; iter < iterations; ++iter) {
      mpi::alltoall<Complex>(comm, send, recv, block * block, algorithm);
    }
    finish[static_cast<std::size_t>(node.rank())] = node.now();
  });

  double makespan = 0.0;
  for (double f : finish) makespan = std::max(makespan, f);
  return makespan / iterations;
}

}  // namespace

int main() {
  const bench::BenchEnv env = bench::bench_env();
  std::printf("Alltoall algorithm comparison (corner-turn exchange)\n\n");
  std::printf("%-6s %-10s %14s %14s %14s\n", "Nodes", "Array",
              "pairwise(ms)", "ring(ms)", "vendor(ms)");

  for (int nodes : env.nodes) {
    for (std::size_t size : env.sizes) {
      if (size % static_cast<std::size_t>(nodes) != 0) continue;
      const double pairwise = measure(
          size, nodes, mpi::AlltoallAlgorithm::kPairwise, env.iterations);
      const double ring =
          measure(size, nodes, mpi::AlltoallAlgorithm::kRing, env.iterations);
      const double vendor = measure(
          size, nodes, mpi::AlltoallAlgorithm::kVendorDirect, env.iterations);
      std::printf("%-6d %zux%-7zu %14.3f %14.3f %14.3f\n", nodes, size, size,
                  pairwise * 1e3, ring * 1e3, vendor * 1e3);
      std::printf("csv,alltoall,%zu,%d,%.6f,%.6f,%.6f\n", size, nodes,
                  pairwise, ring, vendor);
    }
  }
  std::printf("\nThe vendor path models DMA aggregation (reduced per-message\n"
              "software overhead), as each vendor's tuned MPI_Alltoall did.\n");
  return 0;
}
