// AToT mapping quality (paper §1.1).
//
// "AToT can be employed for total design optimization, which includes
// load balancing of CPU resources, optimizing over latency constraints,
// communication minimization and scheduling of CPUs and busses."
// This bench compares the genetic mapper against the greedy,
// round-robin, and random baselines on the benchmark designs and on a
// heterogeneous synthetic design, reporting the cost-model objective and
// the list-scheduler latency estimate for each.
//
// `--json <file>` writes the objectives as gated "host" labels
// ("atot/<problem>/<mapper>", warm_seconds = cost-model objective,
// cold_seconds = list-scheduler latency): the mappers are deterministic,
// so check_bench_regression.py turns the baseline into a mapping-quality
// gate -- a GA or cost-model change that worsens any objective by more
// than the threshold fails CI.
#include <cstdio>
#include <string>

#include "apps/benchmarks.hpp"
#include "atot/mapper.hpp"
#include "atot/scheduler.hpp"
#include "bench_util.hpp"
#include "model/app.hpp"
#include "model/hardware.hpp"
#include "model/mapping.hpp"
#include "support/rng.hpp"

namespace {

using namespace sage;

void report(const char* label, const atot::MappingProblem& problem,
            bench::JsonReport& json) {
  const atot::Assignment random =
      atot::random_mapping(problem, support::Rng::kDefaultSeed);
  const atot::Assignment round_robin = atot::round_robin_mapping(problem);
  const atot::Assignment greedy = atot::greedy_mapping(problem);
  const atot::GeneticResult ga = atot::genetic_mapping(problem);

  auto row = [&](const char* name, const atot::Assignment& a) {
    const atot::CostBreakdown cost = atot::evaluate(problem, a);
    const atot::ScheduleResult sched = atot::list_schedule(problem, a);
    std::printf("  %-12s objective=%10.6f  max_load=%10.6f  comm=%10.6f  "
                "latency=%10.6f\n",
                name, cost.objective, cost.max_load, cost.total_comm,
                sched.latency);
    std::printf("csv,atot,%s,%s,%.8f,%.8f,%.8f,%.8f\n", label, name,
                cost.objective, cost.max_load, cost.total_comm,
                sched.latency);
    bench::HostCost quality;
    quality.label = std::string("atot/") + label + "/" + name;
    quality.cold_seconds = sched.latency;
    quality.warm_seconds = cost.objective;
    quality.warm_runs = 1;
    json.hosts.push_back(quality);
  };

  std::printf("%s (%d tasks on %d processors)\n", label, problem.task_count(),
              problem.proc_count());
  row("random", random);
  row("round-robin", round_robin);
  row("greedy", greedy);
  row("genetic", ga.best);
  std::printf("  genetic ran %d generations\n\n", ga.generations_run);
}

/// A deliberately lumpy synthetic design: mixed work sizes and a
/// heterogeneous machine (two fast processors, six slow).
atot::MappingProblem synthetic_problem() {
  model::Workspace ws("synthetic");
  model::ModelObject& root = ws.root();
  model::ModelObject& hw = model::add_hardware(root, "hetero");
  model::ModelObject& board = model::add_board(hw, "carrier");
  for (int p = 0; p < 2; ++p) {
    model::add_processor(board, "fast_" + std::to_string(p), 400.0,
                         std::int64_t{64} << 20, 0.5);
  }
  model::ModelObject& board2 = model::add_board(hw, "carrier2");
  for (int p = 0; p < 6; ++p) {
    model::add_processor(board2, "slow_" + std::to_string(p), 100.0,
                         std::int64_t{64} << 20, 2.0);
  }

  model::ModelObject& app = model::add_application(root, "synthetic_chain");
  const std::vector<std::size_t> dims{256, 256};
  support::Rng rng(7);
  model::ModelObject* prev = nullptr;
  for (int i = 0; i < 10; ++i) {
    const double work = 1e6 * (1.0 + static_cast<double>(rng.below(20)));
    model::ModelObject& fn = model::add_function(
        app, "stage_" + std::to_string(i), "identity", 2, work);
    model::add_port(fn, "in", model::PortDirection::kIn,
                    model::Striping::kStriped, "cfloat", dims, 0);
    model::add_port(fn, "out", model::PortDirection::kOut,
                    model::Striping::kStriped, "cfloat", dims, 0);
    if (prev != nullptr) {
      model::connect(app, prev->name() + ".out", fn.name() + ".in");
    }
    prev = &fn;
  }
  return atot::build_problem(ws);
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("AToT mapping quality: GA vs baselines\n");
  std::printf("(objective = load + comm + 0.5*imbalance, cost-model seconds)\n\n");

  bench::JsonReport json;
  json.bench = "atot_mapping";
  json.runs = 1;        // the mappers are deterministic
  json.iterations = 1;  // objectives, not host timings

  report("fft2d-1024-8n",
         atot::build_problem(*apps::make_fft2d_workspace(1024, 8)), json);
  report("cornerturn-512-4n",
         atot::build_problem(*apps::make_cornerturn_workspace(512, 4)), json);
  report("synthetic-hetero", synthetic_problem(), json);

  if (const char* path = bench::json_path(argc, argv)) {
    if (!bench::write_json(json, path)) return 2;
  }
  return 0;
}
