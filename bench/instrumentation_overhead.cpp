// Instrumentation overhead: what the always-on observability layer
// costs in host time.
//
// The paper's probes are meant to be cheap enough to leave enabled; the
// metrics registry doubles down (fixed shard cells instead of per-event
// records). This bench drives the same warm session through three
// configurations -- instrumentation off, metrics only, metrics+trace --
// and compares median host cost per run. Virtual time is untouched by
// construction (probe cost is excluded from the emulated clocks), so
// host overhead is the only cost to measure.
//
// Environment knobs (see bench_util.hpp): SAGE_BENCH_RUNS (default 2)
// scales the measured repetitions, SAGE_BENCH_ITERS the iterations per
// run.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "apps/benchmarks.hpp"
#include "bench_util.hpp"
#include "core/project.hpp"
#include "runtime/session.hpp"

namespace {

using namespace sage;

double median_host_seconds(runtime::Session& session,
                           const runtime::RunOverrides& request, int repeats) {
  std::vector<double> costs;
  costs.reserve(static_cast<std::size_t>(repeats));
  session.run(request);  // warmup: exclude any first-touch cost
  for (int r = 0; r < repeats; ++r) {
    costs.push_back(session.run(request).host_seconds);
  }
  std::sort(costs.begin(), costs.end());
  return costs[costs.size() / 2];
}

}  // namespace

int main() {
  const bench::BenchEnv env = bench::bench_env();
  const int repeats = std::max(5, env.runs * 5);

  runtime::ExecuteOptions options;
  options.iterations = std::max(10, env.iterations * 10);
  core::Project project(apps::make_fft2d_workspace(128, 4));
  auto session = project.open_session(options);

  runtime::RunOverrides off;
  off.collect_trace = false;
  off.collect_metrics = false;
  runtime::RunOverrides metrics_only;
  metrics_only.collect_trace = false;
  metrics_only.collect_metrics = true;
  runtime::RunOverrides full;
  full.collect_trace = true;
  full.collect_metrics = true;

  std::printf("Instrumentation overhead -- fft2d 128x128, 4 nodes, %d "
              "iterations, median of %d warm runs\n\n",
              options.iterations, repeats);

  const double base = median_host_seconds(*session, off, repeats);
  const double with_metrics =
      median_host_seconds(*session, metrics_only, repeats);
  const double with_both = median_host_seconds(*session, full, repeats);

  const auto pct = [&](double cost) { return (cost / base - 1.0) * 100.0; };
  std::printf("%-16s %10.3f ms/run\n", "off", base * 1e3);
  std::printf("%-16s %10.3f ms/run  (%+.2f%%)\n", "metrics", with_metrics * 1e3,
              pct(with_metrics));
  std::printf("%-16s %10.3f ms/run  (%+.2f%%)\n", "metrics+trace",
              with_both * 1e3, pct(with_both));
  std::printf("\ncsv,instrumentation,off,%.6f\n", base);
  std::printf("csv,instrumentation,metrics,%.6f,%.4f\n", with_metrics,
              pct(with_metrics));
  std::printf("csv,instrumentation,metrics_trace,%.6f,%.4f\n", with_both,
              pct(with_both));
  return 0;
}
