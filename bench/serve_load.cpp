// Serve load curve -- the headline artifact of the multi-tenant
// session service (serve::Server).
//
// Open-loop Poisson arrivals (seeded, inverse-CDF over mt19937; see
// serve/loadgen.hpp) are driven against a warm fleet at offered loads
// of {0.25, 0.5, 1.0, 2.0}x the calibrated saturation rate. Latencies
// and throughput are *virtual time*: each app is calibrated once
// (solo latency L, streamed period P) and every load point then runs a
// fresh server with that calibration pinned, so the reported curve is
// a pure function of (schedule seed, calibration) -- deterministic on
// any host.
//
// The expected shape, and what the bench enforces:
//   * below saturation (0.25x, 0.5x) the fleet keeps up: p50 ~= solo
//     latency, p99 bounded by a small multiple of it (the acceptance
//     bound is p99 @ 0.5x <= 3x solo latency; exit 1 on violation);
//   * at 1.0x the queue hovers and coalescing onto streaming epochs
//     carries the load at ~the period per completion;
//   * at 2.0x an open-loop generator outruns the fleet: latency grows
//     with queue depth until admission control sheds (kQueueFull).
//
// Host (wall-clock) cost of driving each app's four-point curve feeds
// `--json` -> scripts/check_bench_regression.py against the committed
// BENCH_baseline.json (warm_seconds is the gated figure).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/benchmarks.hpp"
#include "bench_util.hpp"
#include "core/project.hpp"
#include "serve/loadgen.hpp"
#include "serve/server.hpp"

namespace {

using namespace sage;

constexpr std::size_t kN = 64;
constexpr int kNodes = 2;
constexpr int kRequests = 48;         // arrivals per load point
constexpr int kSessionCap = 2;        // fleet size per program
constexpr int kQueueDepth = 256;      // deep enough that only 2.0x sheds
constexpr double kFractions[] = {0.25, 0.5, 1.0, 2.0};
constexpr double kP99Bound = 3.0;     // p99 @ 0.5x <= bound * solo latency

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::unique_ptr<model::Workspace> make_workspace(const std::string& app) {
  if (app == "fft2d") return apps::make_fft2d_workspace(kN, kNodes);
  return apps::make_cornerturn_workspace(kN, kNodes);
}

serve::ServerOptions serve_options(const runtime::ExecuteOptions& execute) {
  serve::ServerOptions options;
  options.workers = 2;
  options.max_sessions_per_program = kSessionCap;
  options.max_queue_depth = kQueueDepth;
  options.execute = execute;
  return options;
}

/// Drives one app's load curve. Appends the per-point host walls (the
/// calibration server first, so host_cost sees it as the cold run) and
/// returns false when the 0.5x acceptance bound fails.
bool drive_curve(const std::string& app, int app_index,
                 std::vector<bench::HostCost>& hosts) {
  core::Project project(make_workspace(app));
  runtime::ExecuteOptions execute;
  execute.iterations = 1;
  execute.collect_trace = false;
  execute = project.resolved_options(execute);
  const auto program = project.compile_program(execute);

  // Calibrate once; every load point below replays this exact model.
  std::vector<double> host;
  double t0 = now_seconds();
  double solo = 0.0;
  double period = 0.0;
  double saturation = 0.0;
  {
    serve::Server calibrator(serve_options(execute));
    const std::uint64_t key =
        calibrator.add_program(app, program, project.registry(), kSessionCap);
    const serve::ProgramInfo info = calibrator.program_info(key);
    solo = info.solo_latency_vt;
    period = info.stream_period_vt;
    saturation = info.saturation_rate();
  }
  host.push_back(now_seconds() - t0);

  std::printf("\n%s %zux%zu, %d nodes: solo latency %.3f ms, period %.3f ms, "
              "saturation %.1f req/s (virtual), fleet cap %d\n",
              app.c_str(), kN, kN, kNodes, solo * 1e3, period * 1e3,
              saturation, kSessionCap);
  std::printf("%-8s %10s %9s %6s %6s %10s %10s %10s\n", "load", "rate(r/s)",
              "admitted", "shed", "coal", "p50(ms)", "p99(ms)", "thru(r/s)");

  bool ok = true;
  int point_index = 0;
  for (const double fraction : kFractions) {
    const double rate = fraction * saturation;
    const std::uint64_t seed =
        0x53415645u ^ static_cast<std::uint64_t>(app_index * 100 + point_index);
    const std::vector<support::VirtualSeconds> arrivals =
        serve::poisson_arrivals(kRequests, rate, seed);

    t0 = now_seconds();
    serve::ServerOptions options = serve_options(execute);
    options.calibration_latency = solo;    // pinned: the point replays
    options.calibration_period = period;   // the calibrated model
    serve::Server server(options);
    const std::uint64_t key =
        server.add_program(app, program, project.registry(), kSessionCap);
    const serve::LoadPoint point =
        serve::drive_load(server, key, arrivals, rate);
    server.shutdown();
    host.push_back(now_seconds() - t0);

    std::printf("%-7.2fx %10.1f %9d %6d %6d %10.3f %10.3f %10.1f\n", fraction,
                rate, point.admitted, point.shed, point.coalesced,
                point.p50_latency_vt * 1e3, point.p99_latency_vt * 1e3,
                point.throughput);
    std::printf("csv,serve,%s,%.2f,%.4f,%d,%d,%d,%.6f,%.6f,%.4f\n",
                app.c_str(), fraction, rate, point.admitted, point.shed,
                point.coalesced, point.p50_latency_vt, point.p99_latency_vt,
                point.throughput);

    if (fraction == 0.5) {
      const double bound = kP99Bound * solo;
      if (point.p99_latency_vt > bound) {
        std::printf("FAIL %s: p99 %.3f ms at 0.5x saturation exceeds "
                    "%.0fx solo latency (%.3f ms)\n",
                    app.c_str(), point.p99_latency_vt * 1e3, kP99Bound,
                    bound * 1e3);
        ok = false;
      } else {
        std::printf("pass %s: p99 %.3f ms at 0.5x saturation within "
                    "%.0fx solo latency (%.3f ms)\n",
                    app.c_str(), point.p99_latency_vt * 1e3, kP99Bound,
                    bound * 1e3);
      }
    }
    ++point_index;
  }
  hosts.push_back(bench::host_cost(app, host));
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("Serve load curve -- open-loop Poisson arrivals, %d requests "
              "per point,\nvirtual-time latency/throughput "
              "(deterministic; host speed never changes the numbers)\n",
              kRequests);

  bench::JsonReport json;
  json.bench = "serve_load";
  json.runs = static_cast<int>(std::size(kFractions));
  json.iterations = 1;

  bool ok = true;
  ok &= drive_curve("fft2d", 0, json.hosts);
  ok &= drive_curve("cornerturn", 1, json.hosts);

  std::printf("\n");
  for (const bench::HostCost& cost : json.hosts) {
    bench::print_host_cost(cost);
  }
  std::printf("\nOpen loop: arrivals never wait for completions, so loads "
              "past saturation expose\nqueueing growth and admission sheds "
              "rather than silently throttling the generator.\n");

  if (const char* path = bench::json_path(argc, argv)) {
    if (!bench::write_json(json, path)) return 1;
  }
  return ok ? 0 : 1;
}
