// Period vs latency (paper §3.3).
//
// "A period is defined to be the time between input data sets while
// latency is the time required to process a single data set." The two
// differ exactly when the mapping pipelines stages across processors.
// This bench runs the same 4-stage chain under two mappings:
//   data-parallel -- every stage spread over all nodes (the Table-1
//                    layout): period ~= latency;
//   pipelined     -- stage i on node i: consecutive data sets overlap,
//                    so the period drops toward the slowest stage while
//                    latency stays the sum of stages.
//
// The streaming section then sustains the pipelined chain with
// Session::submit()/wait(): overlapped data sets on one machine epoch,
// credit flow control bounding each producer's lead. It reports the
// achieved steady-state period per depth (virtual time, deterministic)
// and the host cost of streaming vs the old sequential run loop
// (`--json` feeds scripts/check_bench_regression.py; the depth-1 host
// row is the gated one).
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/project.hpp"
#include "model/app.hpp"
#include "model/hardware.hpp"
#include "model/mapping.hpp"
#include "runtime/session.hpp"

namespace {

using namespace sage;

constexpr std::size_t kN = 256;
constexpr int kStages = 4;
constexpr int kDataSets = 8;  // submissions per streaming repetition

std::unique_ptr<model::Workspace> make_chain(bool pipelined,
                                             bool contention = false) {
  auto ws = std::make_unique<model::Workspace>("chain");
  model::ModelObject& root = ws->root();
  if (contention) {
    // One processor per board so every hop crosses a serialized link.
    model::ModelObject& hw = model::add_hardware(root, "cspi");
    hw.set_property("model_contention", true);
    for (int b = 0; b < kStages; ++b) {
      model::add_processor(
          model::add_board(hw, "board_" + std::to_string(b)),
          "ppc603e_" + std::to_string(b), 200.0, std::int64_t{64} << 20);
    }
  } else {
    model::add_cspi_platform(root, kStages);
  }
  model::ModelObject& app = model::add_application(root, "stage_chain");
  const std::vector<std::size_t> dims{kN, kN};
  const int threads = pipelined ? 1 : kStages;

  model::ModelObject& src =
      model::add_function(app, "src", "matrix_source", threads);
  src.set_property("role", "source");
  model::add_port(src, "out", model::PortDirection::kOut,
                  model::Striping::kStriped, "cfloat", dims, 0);

  std::string prev = "src";
  for (int s = 0; s < kStages - 2; ++s) {
    const std::string name = "fft_stage" + std::to_string(s);
    model::ModelObject& fn =
        model::add_function(app, name, "isspl.fft_rows", threads);
    model::add_port(fn, "in", model::PortDirection::kIn,
                    model::Striping::kStriped, "cfloat", dims, 0);
    model::add_port(fn, "out", model::PortDirection::kOut,
                    model::Striping::kStriped, "cfloat", dims, 0);
    model::connect(app, prev + ".out", name + ".in");
    prev = name;
  }

  model::ModelObject& sink =
      model::add_function(app, "sink", "matrix_sink", threads);
  sink.set_property("role", "sink");
  model::add_port(sink, "in", model::PortDirection::kIn,
                  model::Striping::kStriped, "cfloat", dims, 0);
  model::connect(app, prev + ".out", "sink.in");

  model::ModelObject& mapping = model::add_mapping(root, "mapping", "cspi");
  const std::vector<std::string> fns = {"src", "fft_stage0", "fft_stage1",
                                        "sink"};
  for (int i = 0; i < kStages; ++i) {
    if (pipelined) {
      model::assign_ranks(root, mapping, fns[static_cast<std::size_t>(i)],
                          {i});
    } else {
      model::assign_ranks(root, mapping, fns[static_cast<std::size_t>(i)],
                          {0, 1, 2, 3});
    }
  }
  ws->validate_or_throw();
  return ws;
}

void report(const char* label, bool pipelined, int iterations,
            bool contention = false) {
  core::Project project(make_chain(pipelined, contention));

  // Unloaded latency: a single data set through the empty pipeline.
  runtime::ExecuteOptions single;
  single.iterations = 1;
  single.collect_trace = false;
  const double latency = project.execute(single).mean_latency();

  // Period under steady load.
  runtime::ExecuteOptions loaded;
  loaded.iterations = iterations;
  loaded.collect_trace = false;
  const runtime::RunStats stats = project.execute(loaded);

  std::printf("%-14s latency %8.3f ms   period %8.3f ms   overlap %.2fx\n",
              label, latency * 1e3, stats.period * 1e3,
              stats.period > 0 ? latency / stats.period : 0.0);
  std::printf("csv,pipeline,%s,%.6f,%.6f\n", label, latency, stats.period);
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Streams kDataSets single-iteration submissions per repetition on the
/// pipelined chain; depth 0 runs the old sequential shape (a run()
/// loop, what run_batch did) as the host-cost reference.
bench::HostCost sustain(const char* label, int depth, int runs,
                        double latency) {
  core::Project project(make_chain(/*pipelined=*/true));
  runtime::ExecuteOptions options;
  options.iterations = 1;
  options.collect_trace = false;
  auto session = project.open_session(options);
  runtime::RunOverrides request;
  if (depth > 0) request.buffer_depth = depth;

  std::vector<double> host;
  host.reserve(static_cast<std::size_t>(runs));
  double period_sum = 0.0;
  int period_count = 0;
  for (int r = 0; r < runs; ++r) {
    const double t0 = now_seconds();
    if (depth == 0) {
      for (int i = 0; i < kDataSets; ++i) session->run(request);
    } else {
      std::vector<runtime::Ticket> tickets;
      tickets.reserve(kDataSets);
      for (int i = 0; i < kDataSets; ++i) {
        tickets.push_back(session->submit(request));
      }
      for (const runtime::Ticket ticket : tickets) {
        const runtime::RunStats stats = session->wait(ticket);
        if (stats.stream_period > 0) {
          period_sum += stats.stream_period;
          ++period_count;
        }
      }
    }
    host.push_back(now_seconds() - t0);
  }

  if (depth == 0) {
    std::printf("%-18s %d x %d data sets, sequential (run loop)\n", label,
                runs, kDataSets);
  } else {
    const double period = period_count > 0 ? period_sum / period_count : 0.0;
    std::printf("%-18s period %8.3f ms   latency %8.3f ms   "
                "period/latency %.2f   overlap %.2fx\n",
                label, period * 1e3, latency * 1e3,
                latency > 0 ? period / latency : 0.0,
                period > 0 ? latency / period : 0.0);
    std::printf("csv,stream,%d,%.6f,%.6f,%.2f\n", depth, latency, period,
                period > 0 ? latency / period : 0.0);
  }
  return bench::host_cost(label, host);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchEnv env = bench::bench_env();
  std::printf("Period vs latency -- 4-stage chain, %zux%zu, %d nodes, "
              "10 data sets\n\n",
              kN, kN, kStages);
  report("data-parallel", /*pipelined=*/false, 10);
  report("pipelined", /*pipelined=*/true, 10);
  report("pipelined+link", /*pipelined=*/true, 10, /*contention=*/true);
  std::printf("\nPipelined mappings overlap consecutive data sets: the "
              "period approaches the\nslowest stage while latency stays "
              "the whole chain, as in the paper's definitions.\n");

  // --- sustained throughput: streamed submissions ---------------------------
  std::printf("\nSustained streaming -- pipelined chain, %d data sets per "
              "repetition, %d repetitions\n\n",
              kDataSets, env.runs);
  {
    core::Project project(make_chain(/*pipelined=*/true));
    runtime::ExecuteOptions single;
    single.iterations = 1;
    single.collect_trace = false;
    const double latency = project.execute(single).mean_latency();

    bench::JsonReport json;
    json.bench = "pipeline_period";
    json.runs = env.runs;
    json.iterations = 1;
    json.hosts.push_back(sustain("sequential", 0, env.runs, latency));
    json.hosts.push_back(sustain("streamed_depth1", 1, env.runs, latency));
    json.hosts.push_back(sustain("streamed_depth2", 2, env.runs, latency));
    json.hosts.push_back(sustain("streamed_depth4", 4, env.runs, latency));
    for (const bench::HostCost& cost : json.hosts) {
      bench::print_host_cost(cost);
    }
    std::printf("\nAt depth >= 2 the steady-state period is set by the "
                "slowest stage, not the\nchain: the acceptance bound is "
                "period <= 0.6x latency (see the csv,stream rows).\n");

    if (const char* path = bench::json_path(argc, argv)) {
      if (!bench::write_json(json, path)) return 1;
    }
  }
  return 0;
}
