// Period vs latency (paper §3.3).
//
// "A period is defined to be the time between input data sets while
// latency is the time required to process a single data set." The two
// differ exactly when the mapping pipelines stages across processors.
// This bench runs the same 4-stage chain under two mappings:
//   data-parallel -- every stage spread over all nodes (the Table-1
//                    layout): period ~= latency;
//   pipelined     -- stage i on node i: consecutive data sets overlap,
//                    so the period drops toward the slowest stage while
//                    latency stays the sum of stages.
#include <cstdio>

#include "core/project.hpp"
#include "model/app.hpp"
#include "model/hardware.hpp"
#include "model/mapping.hpp"

namespace {

using namespace sage;

constexpr std::size_t kN = 256;
constexpr int kStages = 4;

std::unique_ptr<model::Workspace> make_chain(bool pipelined,
                                             bool contention = false) {
  auto ws = std::make_unique<model::Workspace>("chain");
  model::ModelObject& root = ws->root();
  if (contention) {
    // One processor per board so every hop crosses a serialized link.
    model::ModelObject& hw = model::add_hardware(root, "cspi");
    hw.set_property("model_contention", true);
    for (int b = 0; b < kStages; ++b) {
      model::add_processor(
          model::add_board(hw, "board_" + std::to_string(b)),
          "ppc603e_" + std::to_string(b), 200.0, std::int64_t{64} << 20);
    }
  } else {
    model::add_cspi_platform(root, kStages);
  }
  model::ModelObject& app = model::add_application(root, "stage_chain");
  const std::vector<std::size_t> dims{kN, kN};
  const int threads = pipelined ? 1 : kStages;

  model::ModelObject& src =
      model::add_function(app, "src", "matrix_source", threads);
  src.set_property("role", "source");
  model::add_port(src, "out", model::PortDirection::kOut,
                  model::Striping::kStriped, "cfloat", dims, 0);

  std::string prev = "src";
  for (int s = 0; s < kStages - 2; ++s) {
    const std::string name = "fft_stage" + std::to_string(s);
    model::ModelObject& fn =
        model::add_function(app, name, "isspl.fft_rows", threads);
    model::add_port(fn, "in", model::PortDirection::kIn,
                    model::Striping::kStriped, "cfloat", dims, 0);
    model::add_port(fn, "out", model::PortDirection::kOut,
                    model::Striping::kStriped, "cfloat", dims, 0);
    model::connect(app, prev + ".out", name + ".in");
    prev = name;
  }

  model::ModelObject& sink =
      model::add_function(app, "sink", "matrix_sink", threads);
  sink.set_property("role", "sink");
  model::add_port(sink, "in", model::PortDirection::kIn,
                  model::Striping::kStriped, "cfloat", dims, 0);
  model::connect(app, prev + ".out", "sink.in");

  model::ModelObject& mapping = model::add_mapping(root, "mapping", "cspi");
  const std::vector<std::string> fns = {"src", "fft_stage0", "fft_stage1",
                                        "sink"};
  for (int i = 0; i < kStages; ++i) {
    if (pipelined) {
      model::assign_ranks(root, mapping, fns[static_cast<std::size_t>(i)],
                          {i});
    } else {
      model::assign_ranks(root, mapping, fns[static_cast<std::size_t>(i)],
                          {0, 1, 2, 3});
    }
  }
  ws->validate_or_throw();
  return ws;
}

void report(const char* label, bool pipelined, int iterations,
            bool contention = false) {
  core::Project project(make_chain(pipelined, contention));

  // Unloaded latency: a single data set through the empty pipeline.
  runtime::ExecuteOptions single;
  single.iterations = 1;
  single.collect_trace = false;
  const double latency = project.execute(single).mean_latency();

  // Period under steady load.
  runtime::ExecuteOptions loaded;
  loaded.iterations = iterations;
  loaded.collect_trace = false;
  const runtime::RunStats stats = project.execute(loaded);

  std::printf("%-14s latency %8.3f ms   period %8.3f ms   overlap %.2fx\n",
              label, latency * 1e3, stats.period * 1e3,
              stats.period > 0 ? latency / stats.period : 0.0);
  std::printf("csv,pipeline,%s,%.6f,%.6f\n", label, latency, stats.period);
}

}  // namespace

int main() {
  std::printf("Period vs latency -- 4-stage chain, %zux%zu, %d nodes, "
              "10 data sets\n\n",
              kN, kN, kStages);
  report("data-parallel", /*pipelined=*/false, 10);
  report("pipelined", /*pipelined=*/true, 10);
  report("pipelined+link", /*pipelined=*/true, 10, /*contention=*/true);
  std::printf("\nPipelined mappings overlap consecutive data sets: the "
              "period approaches the\nslowest stage while latency stays "
              "the whole chain, as in the paper's definitions.\n");
  return 0;
}
