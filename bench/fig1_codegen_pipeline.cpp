// Figure 1.0 as a running pipeline: SAGE models -> Alter glue-code
// generator -> source files.
//
// The figure is an architecture diagram, so there is no data series to
// match; instead this bench drives the actual pipeline for both
// benchmark designs and reports what each stage produced (model object
// counts, generated artifact sizes, function-table and logical-buffer
// entries) and how long generation took.
#include <cstdio>

#include "apps/benchmarks.hpp"
#include "codegen/generator.hpp"
#include "model/app.hpp"

namespace {

using namespace sage;

void run_pipeline(const char* label,
                  std::unique_ptr<model::Workspace> workspace) {
  // Stage 1: the model, as captured by the Designer.
  int objects = 0;
  workspace->root().visit(
      [&](const model::ModelObject&) { ++objects; });
  const auto fns = model::functions(workspace->application());
  const auto arc_list = model::arcs(workspace->application());

  // Stage 2+3: Alter traverses the model and emits the source files.
  const codegen::GeneratedArtifacts artifacts =
      codegen::generate_glue(*workspace);

  std::size_t cfg_lines = 0;
  for (char c : artifacts.glue_config_text()) cfg_lines += (c == '\n');
  std::size_t c_lines = 0;
  for (char c : artifacts.glue_source_text()) c_lines += (c == '\n');

  std::printf("%s\n", label);
  std::printf("  model:      %d objects, %zu functions, %zu arcs\n", objects,
              fns.size(), arc_list.size());
  std::printf("  generator:  %.2f ms (Alter traversal + emission)\n",
              artifacts.generation_seconds * 1e3);
  std::printf("  glue.cfg:   %zu lines, %zu function-table entries, "
              "%zu logical buffers, %d nodes\n",
              cfg_lines, artifacts.config.functions.size(),
              artifacts.config.buffers.size(), artifacts.config.nodes);
  std::printf("  glue.c:     %zu lines of generated C\n", c_lines);
  std::printf("csv,fig1,%s,%d,%zu,%zu,%.6f,%zu,%zu\n", label, objects,
              fns.size(), arc_list.size(), artifacts.generation_seconds,
              cfg_lines, c_lines);
}

}  // namespace

int main() {
  std::printf("Figure 1.0 -- the glue-code generation pipeline\n");
  std::printf("SAGE models -> Alter glue-code generator -> source files\n\n");
  run_pipeline("parallel_fft2d (1024x1024, 8 nodes)",
               apps::make_fft2d_workspace(1024, 8));
  std::printf("\n");
  run_pipeline("distributed_corner_turn (1024x1024, 8 nodes)",
               apps::make_cornerturn_workspace(1024, 8));
  return 0;
}
