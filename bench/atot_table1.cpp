// Closing the AToT loop on the Table-1 workload: does the mapping the
// genetic optimizer produces actually run as well as the canonical
// hand-chosen one-thread-per-node layout?
//
// For each configuration the bench (a) runs the design under the
// canonical mapping, (b) asks AToT for a mapping, writes it back into
// the model, regenerates the glue code, and runs again. The paper's
// workflow -- "the genetic algorithm based partitioning and mapping
// capability of AToT assigns the application tasks" followed by
// auto-generation -- as one measurable loop.
#include <cstdio>

#include "apps/benchmarks.hpp"
#include "atot/cost_model.hpp"
#include "atot/mapper.hpp"
#include "bench_util.hpp"
#include "core/project.hpp"

namespace {

using namespace sage;

double mean_latency(core::Project& project, int iterations) {
  runtime::ExecuteOptions options;
  options.iterations = iterations;
  options.collect_trace = false;
  project.execute(options);  // warm-up (first-touch page faults)
  return project.execute(options).mean_latency();
}

}  // namespace

int main() {
  const bench::BenchEnv env = bench::bench_env();
  std::printf("AToT-mapped vs canonical mapping -- Parallel 2D FFT\n\n");
  std::printf("%-6s %-10s %14s %14s %10s\n", "Nodes", "Array",
              "canonical(ms)", "AToT(ms)", "ratio");

  for (int nodes : env.nodes) {
    for (std::size_t size : env.sizes) {
      if (size % static_cast<std::size_t>(nodes) != 0) continue;

      core::Project canonical(apps::make_fft2d_workspace(size, nodes));
      const double canonical_ms = mean_latency(canonical, env.iterations);

      auto ws = apps::make_fft2d_workspace(size, nodes);
      const atot::MappingProblem problem = atot::build_problem(*ws);
      const atot::GeneticResult ga = atot::genetic_mapping(problem);
      atot::apply_assignment(*ws, problem, ga.best);
      ws->validate_or_throw();
      core::Project mapped(std::move(ws));
      const double mapped_ms = mean_latency(mapped, env.iterations);

      std::printf("%-6d %zux%-7zu %14.3f %14.3f %9.2fx\n", nodes, size, size,
                  canonical_ms * 1e3, mapped_ms * 1e3,
                  canonical_ms > 0 ? mapped_ms / canonical_ms : 0.0);
      std::printf("csv,atot_table1,%zu,%d,%.6f,%.6f\n", size, nodes,
                  canonical_ms, mapped_ms);
    }
  }
  std::printf("\nA ratio near 1.0 means the optimizer independently finds a\n"
              "layout as good as the canonical one-thread-per-node mapping.\n");
  return 0;
}
